/**
 * @file
 * Tests of the runtime SIMD dispatch layer (common/isa.hh): detection
 * sanity, name parsing, programmatic and PL_ISA forcing, the
 * byte-identity guarantee across targets *and* thread counts the
 * lane-based kernel contract (DESIGN.md §7) promises, and the
 * batched crossbar-window path's bit-exact equivalence (outputs and
 * activity counters) to the per-window loop it replaced.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "common/isa.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "nn/layers.hh"
#include "reram/array_group.hh"
#include "reram/params.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace pipelayer {
namespace {

/** Restores the entry dispatch target and PL_ISA on scope exit. */
class ScopedIsa
{
  public:
    ScopedIsa() : entry_(isa::active())
    {
        const char *env = std::getenv("PL_ISA");
        if (env != nullptr)
            saved_env_ = env;
    }
    ~ScopedIsa()
    {
        if (saved_env_.empty())
            ::unsetenv("PL_ISA");
        else
            ::setenv("PL_ISA", saved_env_.c_str(), 1);
        isa::setActive(entry_);
    }

  private:
    isa::Target entry_;
    std::string saved_env_;
};

TEST(IsaDispatch, DetectionSanity)
{
    // Scalar is compiled everywhere: it can never be unsupported.
    EXPECT_TRUE(isa::supported(isa::Target::Scalar));

    const std::vector<isa::Target> avail = isa::availableTargets();
    ASSERT_FALSE(avail.empty());
    EXPECT_EQ(avail.front(), isa::Target::Scalar);
    for (size_t i = 0; i < avail.size(); ++i) {
        EXPECT_TRUE(isa::supported(avail[i]));
        if (i > 0) // narrowest first
            EXPECT_LT(static_cast<int>(avail[i - 1]),
                      static_cast<int>(avail[i]));
    }
    // best() is the widest available target, and whatever is active
    // must be something the host can actually run.
    EXPECT_EQ(isa::best(), avail.back());
    EXPECT_TRUE(isa::supported(isa::active()));
}

TEST(IsaDispatch, NamesParseRoundTrip)
{
    for (int i = 0; i < isa::kTargetCount; ++i) {
        const isa::Target t = static_cast<isa::Target>(i);
        isa::Target parsed;
        ASSERT_TRUE(isa::parse(isa::name(t), &parsed)) << isa::name(t);
        EXPECT_EQ(parsed, t);
    }
    isa::Target out;
    EXPECT_FALSE(isa::parse("sse42", &out));
    EXPECT_FALSE(isa::parse("AVX2", &out)); // names are lower-case
    EXPECT_FALSE(isa::parse("", &out));
}

TEST(IsaDispatch, SetActiveForcesSupportedRejectsUnsupported)
{
    ScopedIsa restore;
    for (int i = 0; i < isa::kTargetCount; ++i) {
        const isa::Target t = static_cast<isa::Target>(i);
        if (isa::supported(t)) {
            EXPECT_TRUE(isa::setActive(t));
            EXPECT_EQ(isa::active(), t);
        } else {
            const isa::Target before = isa::active();
            EXPECT_FALSE(isa::setActive(t));
            EXPECT_EQ(isa::active(), before)
                << "a failed setActive must not change the target";
        }
    }
}

TEST(IsaDispatch, EnvForcingWinsAndAutoPicksWidest)
{
    ScopedIsa restore;
    ::setenv("PL_ISA", "scalar", 1);
    isa::reresolveFromEnv();
    EXPECT_EQ(isa::active(), isa::Target::Scalar);
    ::unsetenv("PL_ISA");
    isa::reresolveFromEnv();
    EXPECT_EQ(isa::active(), isa::best());
}

TEST(IsaDispatch, StatsReportTheActiveTargetOrdinal)
{
    ScopedIsa restore;
    ASSERT_TRUE(isa::setActive(isa::Target::Scalar));
    stats::StatGroup group("test");
    isa::addStats(group, "host");
    EXPECT_DOUBLE_EQ(group.lookup("host.isa_level"), 0.0);
}

TEST(IsaDispatch, ResultsByteIdenticalAcrossTargetsAndThreads)
{
    ScopedIsa restore;
    Rng rng(0x15Au);
    const Tensor in = Tensor::randn({5, 13, 13}, rng);
    const Tensor kernel = Tensor::randn({7, 5, 3, 3}, rng);
    const Tensor bias = Tensor::randn({7}, rng);
    const Tensor w = Tensor::randn({131, 129}, rng);
    const Tensor x = Tensor::randn({129}, rng);

    // Reference point: scalar kernels, single thread.
    ASSERT_TRUE(isa::setActive(isa::Target::Scalar));
    const int64_t saved = threadCount();
    setThreadCount(1);
    const Tensor conv0 = ops::conv2d(in, kernel, bias, 1, 1);
    const Tensor mv0 = ops::matVec(w, x);

    for (isa::Target t : isa::availableTargets()) {
        ASSERT_TRUE(isa::setActive(t));
        for (int64_t threads : {int64_t{1}, int64_t{4}}) {
            setThreadCount(threads);
            SCOPED_TRACE(std::string("isa=") + isa::name(t) +
                         " threads=" + std::to_string(threads));
            const Tensor conv = ops::conv2d(in, kernel, bias, 1, 1);
            const Tensor mv = ops::matVec(w, x);
            ASSERT_EQ(conv.shape(), conv0.shape());
            EXPECT_EQ(0, std::memcmp(conv.data(), conv0.data(),
                                     static_cast<size_t>(conv.numel()) *
                                         sizeof(float)));
            ASSERT_EQ(mv.shape(), mv0.shape());
            EXPECT_EQ(0, std::memcmp(mv.data(), mv0.data(),
                                     static_cast<size_t>(mv.numel()) *
                                         sizeof(float)));
        }
    }
    setThreadCount(saved);
}

TEST(IsaDispatch, ReluLayerByteIdenticalAcrossTargets)
{
    // The elementwise layers dispatch too (relu_f32/relu_mask_f32):
    // forward, infer and the backward mask must be bit-identical on
    // every target, including the -0.0f / NaN edge cases the select
    // contract pins down (both rectify to +0.0f).
    ScopedIsa restore;
    Rng rng(0x2E1Fu);
    Tensor in = Tensor::randn({3, 17, 17}, rng);
    in.at(0) = -0.0f;
    in.at(1) = 0.0f;
    in.at(2) = std::numeric_limits<float>::quiet_NaN();
    const Tensor delta = Tensor::randn({3, 17, 17}, rng);

    ASSERT_TRUE(isa::setActive(isa::Target::Scalar));
    nn::ReluLayer ref_layer;
    const Tensor fwd0 = ref_layer.forward(in);
    const Tensor inf0 = ref_layer.infer(in);
    const Tensor bwd0 = ref_layer.backward(delta);
    // The scalar ternary semantics, independently restated.
    for (int64_t i = 0; i < in.numel(); ++i) {
        const float x = in.at(i);
        const float want = x > 0.0f ? x : 0.0f;
        const float got = fwd0.at(i);
        EXPECT_EQ(0, std::memcmp(&want, &got, sizeof(float)))
            << "element " << i;
    }

    for (isa::Target t : isa::availableTargets()) {
        ASSERT_TRUE(isa::setActive(t));
        SCOPED_TRACE(std::string("isa=") + isa::name(t));
        nn::ReluLayer layer;
        const Tensor fwd = layer.forward(in);
        const Tensor inf = layer.infer(in);
        const Tensor bwd = layer.backward(delta);
        const size_t bytes =
            static_cast<size_t>(in.numel()) * sizeof(float);
        EXPECT_EQ(0, std::memcmp(fwd.data(), fwd0.data(), bytes));
        EXPECT_EQ(0, std::memcmp(inf.data(), inf0.data(), bytes));
        EXPECT_EQ(0, std::memcmp(bwd.data(), bwd0.data(), bytes));
    }
}

// ---------------------------------------------------------------------
// Batched crossbar windows vs the per-window loop
// ---------------------------------------------------------------------

void
expectSameActivity(const reram::ArrayActivity &a,
                   const reram::ArrayActivity &b)
{
    EXPECT_EQ(a.input_spikes, b.input_spikes);
    EXPECT_EQ(a.write_pulses, b.write_pulses);
    EXPECT_EQ(a.mvm_ops, b.mvm_ops);
    EXPECT_EQ(a.if_fires, b.if_fires);
}

TEST(IsaDispatch, BatchedCrossbarWindowsMatchLoopedBitExact)
{
    ScopedIsa restore;
    const int64_t saved = threadCount();
    // Partial tiles in both directions (m_in > array_rows) and signed
    // inputs, so the batch path's tiling, sign-split passes and
    // all-zero-chunk filtering all run.
    Rng rng(0xBA7Cu);
    const reram::DeviceParams params;
    const Tensor weight = Tensor::randn({96, 200}, rng);

    for (isa::Target t : isa::availableTargets()) {
        for (int64_t threads : {int64_t{1}, int64_t{4}}) {
            ASSERT_TRUE(isa::setActive(t));
            setThreadCount(threads);
            SCOPED_TRACE(std::string("isa=") + isa::name(t) +
                         " threads=" + std::to_string(threads));

            // Two groups programmed from the same weights: one takes
            // the batch in one call, the other window by window, so
            // their activity counters are directly comparable.
            reram::ArrayGroup batched(params, weight);
            reram::ArrayGroup looped(params, weight);

            constexpr int64_t kWindows = 5;
            Tensor xb({kWindows, 200});
            for (int64_t i = 0; i < xb.numel(); ++i)
                xb.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
            // One all-non-negative window: its negative pass must be
            // skipped by both paths.
            for (int64_t j = 0; j < 200; ++j)
                xb(2, j) = static_cast<float>(rng.uniform());

            const Tensor got = batched.matVecBatch(xb);
            ASSERT_EQ(got.shape(), Shape({kWindows, 96}));

            Tensor one({200});
            for (int64_t b = 0; b < kWindows; ++b) {
                for (int64_t j = 0; j < 200; ++j)
                    one(j) = xb(b, j);
                const Tensor want = looped.matVec(one);
                ASSERT_EQ(0,
                          std::memcmp(got.data() + b * 96, want.data(),
                                      96 * sizeof(float)))
                    << "window " << b;
            }
            expectSameActivity(batched.totalActivity(),
                               looped.totalActivity());

            // batch == 1 degenerates to matVec exactly.
            Tensor x1({1, 200});
            for (int64_t j = 0; j < 200; ++j)
                x1(0, j) = xb(0, j);
            const Tensor via_batch = batched.matVecBatch(x1);
            for (int64_t j = 0; j < 200; ++j)
                one(j) = xb(0, j);
            const Tensor via_single = looped.matVec(one);
            EXPECT_EQ(0, std::memcmp(via_batch.data(),
                                     via_single.data(),
                                     96 * sizeof(float)));
        }
    }
    setThreadCount(saved);
}

} // namespace
} // namespace pipelayer
