/**
 * @file
 * Tests of the memory-subarray storage region (paper §3/§4.1) and the
 * Copy_to_PL / Copy_to_CPU accounting it backs.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/device.hh"
#include "reram/memory_region.hh"

namespace pipelayer {
namespace reram {
namespace {

TEST(MemoryRegion, CapacityFollowsGeometry)
{
    DeviceParams p; // 128x128 cells, 4-bit cells, 16-bit values
    MemoryRegion region(p, 4);
    // 4 arrays * 16384 cells * 4 bits / 16 bits = 16384 values.
    EXPECT_EQ(region.capacityValues(), 16384);
    EXPECT_EQ(region.usedValues(), 0);
    EXPECT_EQ(region.arrayCount(), 4);
    EXPECT_GT(region.areaMm2(), 0.0);
}

TEST(MemoryRegion, WriteReadRoundTrip)
{
    MemoryRegion region(DeviceParams(), 4);
    Rng rng(1);
    const Tensor t = Tensor::randn({3, 5}, rng);
    region.write("acts", t);
    EXPECT_TRUE(region.contains("acts"));
    EXPECT_EQ(region.usedValues(), 15);

    const Tensor back = region.read("acts");
    ASSERT_EQ(back.shape(), t.shape());
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_FLOAT_EQ(back.at(i), t.at(i));
}

TEST(MemoryRegion, OverwriteReplacesWithoutLeaking)
{
    MemoryRegion region(DeviceParams(), 4);
    Rng rng(2);
    region.write("x", Tensor::randn({100}, rng));
    region.write("x", Tensor::randn({60}, rng));
    EXPECT_EQ(region.usedValues(), 60);
}

TEST(MemoryRegion, EraseFreesCapacity)
{
    MemoryRegion region(DeviceParams(), 4);
    Rng rng(3);
    region.write("x", Tensor::randn({100}, rng));
    region.erase("x");
    EXPECT_FALSE(region.contains("x"));
    EXPECT_EQ(region.usedValues(), 0);
    region.erase("never-there"); // no-op, no crash
}

TEST(MemoryRegion, StatsAccountTransfers)
{
    MemoryRegion region(DeviceParams(), 4);
    Rng rng(4);
    const Tensor t = Tensor::randn({256}, rng);
    region.write("x", t);
    (void)region.read("x");
    (void)region.read("x");

    const MemoryStats &stats = region.stats();
    EXPECT_EQ(stats.writes, 1);
    EXPECT_EQ(stats.reads, 2);
    EXPECT_EQ(stats.bits_written, 256 * 16);
    EXPECT_EQ(stats.bits_read, 2 * 256 * 16);
    EXPECT_GT(stats.write_time, 0.0);
    EXPECT_GT(stats.read_time, 0.0);
    EXPECT_GT(stats.energy, 0.0);
    // Writes are slower than reads per bit (50.88 vs 29.31 ns/pulse).
    EXPECT_GT(stats.write_time, stats.read_time / 2.0);
}

TEST(MemoryRegion, NamesAreSorted)
{
    MemoryRegion region(DeviceParams(), 4);
    Rng rng(5);
    region.write("zeta", Tensor::randn({4}, rng));
    region.write("alpha", Tensor::randn({4}, rng));
    const auto names = region.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(MemoryRegionDeath, OverflowIsFatal)
{
    MemoryRegion region(DeviceParams(), 1); // 4096 values
    Rng rng(6);
    EXPECT_EXIT(region.write("big", Tensor::randn({5000}, rng)),
                ::testing::ExitedWithCode(1), "overflow");
}

TEST(MemoryRegionDeath, ReadingMissingTensorIsFatal)
{
    MemoryRegion region(DeviceParams(), 1);
    EXPECT_EXIT(region.read("ghost"), ::testing::ExitedWithCode(1),
                "no tensor");
}

TEST(DeviceStaging, CopyAccountsTraffic)
{
    core::PipeLayerConfig config;
    core::PipeLayerDevice dev(config);
    Rng rng(7);
    const Tensor t = Tensor::randn({64}, rng);
    dev.Copy_to_PL("input", t);
    (void)dev.Copy_to_CPU("input");
    EXPECT_EQ(dev.stagingStats().writes, 1);
    EXPECT_EQ(dev.stagingStats().reads, 1);
    EXPECT_GT(dev.stagingStats().energy, 0.0);
}

} // namespace
} // namespace reram
} // namespace pipelayer
