/**
 * @file
 * Tests of the serving telemetry stack (docs/observability.md,
 * "Serving telemetry"): the metrics::Sampler window arithmetic and
 * NDJSON schema, the request-lifecycle trace vocabulary emitted by
 * sim::ServingSim (async spans, flow arrows, counter tracks), the
 * byte-determinism contract CI relies on, and the pl_report
 * parse/table/diff logic with its bench_compare-style exit codes.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "reram/params.hh"
#include "sim/arrival.hh"
#include "sim/serving.hh"
#include "tools/pl_report_lib.hh"
#include "workloads/model_zoo.hh"

namespace pipelayer {
namespace {

// ---------------------------------------------------------------------
// metrics::percentile

TEST(Percentile, MatchesNearestRankRule)
{
    EXPECT_EQ(metrics::percentile({}, 50), 0);
    EXPECT_EQ(metrics::percentile({7}, 50), 7);
    EXPECT_EQ(metrics::percentile({7}, 99), 7);
    std::vector<int64_t> ladder;
    for (int64_t i = 1; i <= 100; ++i)
        ladder.push_back(i);
    EXPECT_EQ(metrics::percentile(ladder, 50), 50);
    EXPECT_EQ(metrics::percentile(ladder, 95), 95);
    EXPECT_EQ(metrics::percentile(ladder, 99), 99);
    EXPECT_EQ(metrics::percentile({1, 2, 3}, 50), 2);
    EXPECT_EQ(metrics::percentile({1, 2, 3}, 95), 3);
    EXPECT_EQ(metrics::percentile({3, 5}, 50), 3);
    EXPECT_EQ(metrics::percentile({3, 5}, 95), 5);
}

// ---------------------------------------------------------------------
// metrics::Sampler

TEST(Sampler, RejectsNonPositiveInterval)
{
    EXPECT_THROW(metrics::Sampler(0), ConfigError);
    EXPECT_THROW(metrics::Sampler(-4), ConfigError);
    EXPECT_NO_THROW(metrics::Sampler(1));
}

TEST(Sampler, DuplicateChannelNamePanicsAcrossKinds)
{
    metrics::Sampler sampler(8);
    sampler.counter("shared");
    EXPECT_DEATH(sampler.counter("shared"), "registered twice");
    EXPECT_DEATH(sampler.gauge("shared"), "registered twice");
    EXPECT_DEATH(sampler.distribution("shared"), "registered twice");
}

TEST(Sampler, SchemaGolden)
{
    // Pins the NDJSON record shape the whole toolchain agrees on
    // (json_lint checks it, pl_report parses it): member order,
    // delta/total counters, distribution summary fields, trailer.
    metrics::Sampler sampler(4);
    const int c = sampler.counter("c");
    const int g = sampler.gauge("g");
    const int d = sampler.distribution("d");
    sampler.add(c, 0);
    sampler.add(c, 1);
    sampler.set(g, 2, 7);
    sampler.observe(d, 1, 5);
    sampler.observe(d, 6, 3);
    sampler.finish(8);

    ASSERT_EQ(sampler.records().size(), 3u); // 2 windows + trailer
    EXPECT_EQ(sampler.records()[0].dump(),
              "{\"metrics_version\":1,\"cycle\":0,\"end_cycle\":4,"
              "\"interval\":4,"
              "\"counters\":{\"c\":{\"delta\":2,\"total\":2}},"
              "\"gauges\":{\"g\":7},"
              "\"distributions\":{\"d\":{\"count\":1,\"min\":5,"
              "\"max\":5,\"sum\":5,\"p50\":5,\"p95\":5,\"p99\":5}}}");
    EXPECT_EQ(sampler.records()[1].dump(),
              "{\"metrics_version\":1,\"cycle\":4,\"end_cycle\":8,"
              "\"interval\":4,"
              "\"counters\":{\"c\":{\"delta\":0,\"total\":2}},"
              "\"gauges\":{\"g\":7},"
              "\"distributions\":{\"d\":{\"count\":1,\"min\":3,"
              "\"max\":3,\"sum\":3,\"p50\":3,\"p95\":3,\"p99\":3}}}");
    EXPECT_EQ(sampler.trailer().dump(),
              "{\"metrics_version\":1,\"trailer\":true,\"interval\":4,"
              "\"windows\":2,\"end_cycle\":8,"
              "\"totals\":{\"c\":2},"
              "\"distributions\":{\"d\":{\"count\":2,\"min\":3,"
              "\"max\":5,\"sum\":8,\"p50\":3,\"p95\":5,\"p99\":5}}}");
}

TEST(Sampler, IntervalOneGivesOneWindowPerCycle)
{
    metrics::Sampler sampler(1);
    const int c = sampler.counter("c");
    sampler.add(c, 0);
    sampler.add(c, 2);
    sampler.finish(3);
    ASSERT_EQ(sampler.records().size(), 4u); // 3 windows + trailer
    const auto delta = [&](size_t w) {
        return sampler.records()[w].at("counters").at("c").at("delta")
            .asInt();
    };
    EXPECT_EQ(delta(0), 1);
    EXPECT_EQ(delta(1), 0);
    EXPECT_EQ(delta(2), 1);
    EXPECT_EQ(sampler.trailer().at("totals").at("c").asInt(), 2);
}

TEST(Sampler, IntervalLargerThanHorizonGivesOnePartialWindow)
{
    metrics::Sampler sampler(1000);
    const int c = sampler.counter("c");
    sampler.add(c, 5);
    sampler.finish(10);
    ASSERT_EQ(sampler.records().size(), 2u);
    EXPECT_EQ(sampler.records()[0].at("cycle").asInt(), 0);
    EXPECT_EQ(sampler.records()[0].at("end_cycle").asInt(), 10);
    EXPECT_EQ(sampler.trailer().at("windows").asInt(), 1);
    EXPECT_EQ(sampler.trailer().at("end_cycle").asInt(), 10);
}

TEST(Sampler, EmptyRunEmitsOnlyTheTrailer)
{
    metrics::Sampler sampler(64);
    sampler.counter("c");
    sampler.finish(0);
    ASSERT_EQ(sampler.records().size(), 1u);
    EXPECT_EQ(sampler.trailer().at("windows").asInt(), 0);
    EXPECT_EQ(sampler.trailer().at("end_cycle").asInt(), 0);
    EXPECT_EQ(sampler.trailer().at("totals").at("c").asInt(), 0);
}

TEST(Sampler, HorizonStretchesOverLateObservations)
{
    // finish(end) covers observations past end: the serving policy
    // hands the scheduler's total_cycles, but completions can land at
    // exactly that cycle.
    metrics::Sampler sampler(4);
    const int d = sampler.distribution("d");
    sampler.observe(d, 9, 1);
    sampler.finish(2);
    EXPECT_EQ(sampler.trailer().at("windows").asInt(), 3);
    EXPECT_EQ(sampler.trailer().at("end_cycle").asInt(), 10);
    EXPECT_EQ(sampler.records()[2].at("distributions").at("d")
                  .at("count").asInt(), 1);
}

TEST(Sampler, GaugeCarriesForwardAcrossIdleWindows)
{
    metrics::Sampler sampler(2);
    const int g = sampler.gauge("g");
    sampler.set(g, 3, 5);
    sampler.finish(8);
    ASSERT_EQ(sampler.records().size(), 5u);
    const auto value = [&](size_t w) {
        return sampler.records()[w].at("gauges").at("g").asInt();
    };
    EXPECT_EQ(value(0), 0); // nothing set yet
    EXPECT_EQ(value(1), 5);
    EXPECT_EQ(value(2), 5); // carried forward
    EXPECT_EQ(value(3), 5);
}

TEST(Sampler, FeedingAfterFinishPanics)
{
    metrics::Sampler sampler(4);
    const int c = sampler.counter("c");
    sampler.finish(4);
    EXPECT_DEATH(sampler.add(c, 0), "after finish");
}

TEST(Sampler, AttachedGroupSnapshotsIntoTrailerStats)
{
    metrics::Sampler sampler(4);
    stats::StatGroup group("g");
    group.addFormula("answer", [] { return 42.0; }, "the answer");
    sampler.attachGroup(&group);
    sampler.finish(4);
    EXPECT_EQ(sampler.trailer().at("stats").at("g.answer").asNumber(),
              42.0);
}

// ---------------------------------------------------------------------
// Serving integration: the channels ServingSim feeds and the trace
// vocabulary it emits.

sim::ServingSim
mnistServing()
{
    return sim::ServingSim(workloads::mnistA(), reram::DeviceParams());
}

TEST(ServingTelemetry, TrailerPercentilesMatchServingReport)
{
    // The sampler computes whole-run percentiles with the same
    // nearest-rank rule as the report, over the same completions —
    // they must agree exactly, which is what lets pl_report gate the
    // trailer against the bench_compare-gated report metrics.
    const sim::ServingSim serving = mnistServing();
    const sim::ArrivalTrace trace =
        sim::ArrivalTrace::poisson(512, 0.5, 17);
    const sim::ServingConfig config;
    metrics::Sampler sampler(64);
    const sim::ServingReport rep =
        serving.run(trace, config, nullptr, &sampler);

    const json::Value &latency =
        sampler.trailer().at("distributions").at(
            "serving.latency_cycles");
    EXPECT_EQ(latency.at("p50").asInt(), rep.p50_latency_cycles);
    EXPECT_EQ(latency.at("p95").asInt(), rep.p95_latency_cycles);
    EXPECT_EQ(latency.at("p99").asInt(), rep.p99_latency_cycles);
    EXPECT_EQ(latency.at("max").asInt(), rep.max_latency_cycles);
    EXPECT_EQ(latency.at("count").asInt(), rep.admitted_count);

    const json::Value &totals = sampler.trailer().at("totals");
    EXPECT_EQ(totals.at("serving.arrivals").asInt(), rep.arrival_count);
    EXPECT_EQ(totals.at("serving.admitted").asInt(), rep.admitted_count);
    EXPECT_EQ(totals.at("serving.shed").asInt(), rep.shed_count);
    EXPECT_EQ(totals.at("serving.launches").asInt(), rep.batch_count);

    // The trailer snapshots the serving stat group, so the stream is
    // self-reconciling (json_lint cross-checks these pairs).
    const json::Value &stats = sampler.trailer().at("stats");
    EXPECT_EQ(stats.at("serving.arrival_count").asNumber(),
              static_cast<double>(rep.arrival_count));
}

TEST(ServingTelemetry, WindowCountersAccumulateToTheTrailerTotals)
{
    const sim::ServingSim serving = mnistServing();
    metrics::Sampler sampler(32);
    serving.run(sim::ArrivalTrace::poisson(256, 0.5, 3),
                sim::ServingConfig(), nullptr, &sampler);
    int64_t sum = 0;
    for (size_t w = 0; w + 1 < sampler.records().size(); ++w) {
        const json::Value &c = sampler.records()[w].at("counters").at(
            "serving.completions");
        sum += c.at("delta").asInt();
        EXPECT_EQ(c.at("total").asInt(), sum);
    }
    EXPECT_EQ(sum, sampler.trailer().at("totals")
                       .at("serving.completions").asInt());
}

TEST(ServingTelemetry, StreamAndTraceAreByteIdenticalAcrossThreads)
{
    // Both artifacts are logical-cycle arithmetic; PL_THREADS must
    // not be observable in either byte (CI cmp-compares the files
    // pl_serve and bench_serving write at threads 1 and 4).
    const sim::ServingSim serving = mnistServing();
    const sim::ArrivalTrace trace =
        sim::ArrivalTrace::poisson(1024, 0.4, 21);
    const sim::ServingConfig config;
    const auto render = [&] {
        trace::TraceRecorder recorder("test");
        metrics::Sampler sampler(64);
        serving.run(trace, config, &recorder, &sampler);
        std::ostringstream metrics_os;
        sampler.write(metrics_os);
        return metrics_os.str() + recorder.toJson().dump();
    };
    const int64_t saved = threadCount();
    setThreadCount(1);
    const std::string t1 = render();
    setThreadCount(4);
    const std::string t4 = render();
    setThreadCount(saved);
    EXPECT_EQ(t1, t4);
}

TEST(ServingTelemetry, TraceCarriesTheRequestLifecycleVocabulary)
{
    const sim::ServingSim serving = mnistServing();
    trace::TraceRecorder recorder("test");
    sim::ServingConfig config;
    config.queue_capacity = 8; // force sheds at 2 req/cycle
    const sim::ServingReport rep =
        serving.run(sim::ArrivalTrace::poisson(256, 2.0, 9), config,
                    &recorder, nullptr);
    ASSERT_GT(rep.shed_count, 0);

    // All async spans closed, all flows paired: toJson() asserts.
    EXPECT_EQ(recorder.openAsyncCount(), 0);
    const json::Value doc = recorder.toJson();
    int64_t begins = 0, ends = 0, instants = 0, starts = 0,
            finishes = 0, counter_points = 0;
    for (const auto &event : doc.at("traceEvents").elements()) {
        const std::string ph = event.at("ph").asString();
        begins += ph == "b";
        ends += ph == "e";
        instants += ph == "n";
        starts += ph == "s";
        finishes += ph == "f";
        counter_points += ph == "C";
    }
    // One span per request plus nested queued/exec per admit.
    EXPECT_EQ(begins, rep.arrival_count + 2 * rep.admitted_count);
    EXPECT_EQ(ends, begins);                  // balanced
    EXPECT_EQ(instants, rep.arrival_count);   // admitted/shed markers
    EXPECT_EQ(starts, rep.admitted_count);    // one flow per admit
    EXPECT_EQ(finishes, starts);
    EXPECT_GT(counter_points, 0);

    // The three counter tracks exist even when a series never fires,
    // and the shed running total is monotone by construction.
    for (const char *name : {"serving.queue_depth", "serving.in_flight",
                             "serving.shed_total"}) {
        EXPECT_FALSE(recorder.counterSeries(name).empty()) << name;
    }
    const auto sheds = recorder.counterSeries("serving.shed_total");
    int64_t prev = -1;
    for (const auto &point : sheds) {
        EXPECT_GE(point.second, prev);
        prev = point.second;
    }
    EXPECT_EQ(prev, rep.shed_count);
}

TEST(ServingTelemetry, UnbalancedSpansAndFlowsDieAtSerialisation)
{
    {
        trace::TraceRecorder recorder("test");
        recorder.asyncBegin("req0", "request", 0, 0);
        EXPECT_DEATH(recorder.toJson(), "open async span");
    }
    {
        trace::TraceRecorder recorder("test");
        const int64_t track = recorder.addTrack("t");
        recorder.complete(track, "slice", "cat", 0, 4);
        recorder.flowStart("flow", "req", 0, track, 1);
        EXPECT_DEATH(recorder.toJson(), "exactly one of each");
    }
    {
        // A flow endpoint with no enclosing slice on its track.
        trace::TraceRecorder recorder("test");
        const int64_t track = recorder.addTrack("t");
        recorder.complete(track, "slice", "cat", 0, 4);
        recorder.flowStart("flow", "req", 0, track, 1);
        recorder.flowFinish("flow", "req", 0, track, 99);
        EXPECT_DEATH(recorder.toJson(), "no enclosing slice");
    }
}

// ---------------------------------------------------------------------
// pl_report: parse, table, diff, exit codes.

/** A serving metrics stream rendered to NDJSON text. */
std::string
servingStream(double rate, uint64_t seed, int64_t interval = 64)
{
    const sim::ServingSim serving = mnistServing();
    metrics::Sampler sampler(interval);
    serving.run(sim::ArrivalTrace::poisson(256, rate, seed),
                sim::ServingConfig(), nullptr, &sampler);
    std::ostringstream os;
    sampler.write(os);
    return os.str();
}

TEST(PlReport, ParseMetricsRoundTripsAndValidates)
{
    const std::string text = servingStream(0.5, 11);
    const report::MetricsStream stream = report::parseMetrics(text);
    EXPECT_GT(stream.windows.size(), 1u);
    EXPECT_EQ(stream.interval(), 64);
    EXPECT_EQ(stream.trailer.at("windows").asInt(),
              static_cast<int64_t>(stream.windows.size()));

    // No trailer: the stream was truncated.
    const size_t last_line = text.rfind('\n', text.size() - 2);
    EXPECT_THROW(report::parseMetrics(text.substr(0, last_line + 1)),
                 ConfigError);
    // Garbage line.
    EXPECT_THROW(report::parseMetrics("not json\n"), ConfigError);
    // Wrong version.
    EXPECT_THROW(report::parseMetrics("{\"metrics_version\":2}\n"),
                 ConfigError);
    // Non-monotone window cycles.
    const report::MetricsStream two = report::parseMetrics(text);
    std::ostringstream shuffled;
    shuffled << two.windows[1].dump() << "\n"
             << two.windows[0].dump() << "\n"
             << two.trailer.dump() << "\n";
    EXPECT_THROW(report::parseMetrics(shuffled.str()), ConfigError);
}

TEST(PlReport, RenderTableShowsWindowsAndTotals)
{
    const report::MetricsStream stream =
        report::parseMetrics(servingStream(0.5, 11));
    const std::string table = report::renderTable(stream);
    EXPECT_NE(table.find("cycle"), std::string::npos);
    EXPECT_NE(table.find("p99"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
    // One row per window, plus header/separator/totals.
    const size_t rows =
        static_cast<size_t>(std::count(table.begin(), table.end(),
                                       '\n'));
    EXPECT_GE(rows, stream.windows.size() + 2);
}

TEST(PlReport, SelfDiffPassesAndRegressionFlagsTheWindow)
{
    const report::MetricsStream base =
        report::parseMetrics(servingStream(0.5, 11));
    const report::DiffResult self = report::diffStreams(base, base);
    EXPECT_TRUE(self.errors.empty());
    EXPECT_FALSE(self.deltas.empty());
    EXPECT_EQ(self.exitCode(1.5), report::kPass);

    // Inflate one window's p99 in a copy: exactly that (window,
    // series) pair regresses and the exit code flips.
    report::MetricsStream worse = base;
    worse.windows[1]["distributions"]["serving.latency_cycles"]
        ["p99"] = int64_t{999999};
    const report::DiffResult diff = report::diffStreams(base, worse);
    EXPECT_TRUE(diff.errors.empty());
    const auto regs = diff.regressions(1.5);
    ASSERT_EQ(regs.size(), 1u);
    EXPECT_EQ(regs[0].path, "distributions.serving.latency_cycles.p99");
    EXPECT_EQ(regs[0].cycle, base.windows[1].at("cycle").asInt());
    EXPECT_EQ(regs[0].current, 999999.0);
    EXPECT_EQ(diff.exitCode(1.5), report::kRegression);
    const json::Value doc = diff.toJson(1.5);
    EXPECT_EQ(doc.at("report_version").asInt(), 1);
    EXPECT_EQ(doc.at("regressions").size(), 1u);
}

TEST(PlReport, ThroughputRegressionIsDirectional)
{
    // completions is higher-is-better: halving it regresses, doubling
    // it does not.
    const report::MetricsStream base =
        report::parseMetrics(servingStream(0.5, 11));
    report::MetricsStream worse = base;
    for (json::Value &rec : worse.windows) {
        json::Value &c =
            rec["counters"]["serving.completions"]["delta"];
        c = c.asInt() / 4;
    }
    const report::DiffResult diff = report::diffStreams(base, worse);
    bool saw_completions = false;
    for (const report::WindowDelta &d : diff.regressions(1.5)) {
        EXPECT_EQ(d.path, "counters.serving.completions.delta");
        EXPECT_FALSE(d.lower_is_better);
        saw_completions = true;
    }
    EXPECT_TRUE(saw_completions);
}

TEST(PlReport, StructuralMismatchesAreErrorsNotRegressions)
{
    const report::MetricsStream base =
        report::parseMetrics(servingStream(0.5, 11));
    // Interval mismatch.
    const report::MetricsStream other =
        report::parseMetrics(servingStream(0.5, 11, 32));
    const report::DiffResult diff = report::diffStreams(base, other);
    EXPECT_FALSE(diff.errors.empty());
    EXPECT_EQ(diff.exitCode(1.5), report::kError);
    // Horizon divergence: drop the last window (and fix the trailer
    // count so parseMetrics accepts the stream).
    report::MetricsStream shorter = base;
    shorter.windows.pop_back();
    const report::DiffResult missing =
        report::diffStreams(base, shorter);
    EXPECT_FALSE(missing.errors.empty());
    EXPECT_EQ(missing.exitCode(1.5), report::kError);
}

TEST(PlReport, RunReportsBadPathsAsExitError)
{
    std::ostringstream os, err;
    EXPECT_EQ(report::run({"/nonexistent/metrics.ndjson"}, {}, 1.5, "",
                          os, err),
              report::kError);
    EXPECT_NE(err.str().find("cannot open"), std::string::npos);
    EXPECT_EQ(report::run({}, {}, 1.5, "", os, err), report::kError);
    EXPECT_EQ(report::run({"a", "b"}, {"only-one"}, 1.5, "", os, err),
              report::kError);
    EXPECT_EQ(report::run({"a", "b"}, {}, 0.5, "", os, err),
              report::kError);
}

} // namespace
} // namespace pipelayer
