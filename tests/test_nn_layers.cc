/**
 * @file
 * Unit tests for the layer implementations, including numerical
 * gradient checks of every parameterised layer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hh"
#include "nn/layers.hh"
#include "nn/loss.hh"

namespace pipelayer {
namespace nn {
namespace {

/** Scalar pseudo-loss: Σ out ⊙ delta, to drive gradient checks. */
double
probeLoss(const Tensor &out, const Tensor &delta)
{
    double loss = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i)
        loss += out.at(i) * delta.at(i);
    return loss;
}

/**
 * Numerically verify dL/dparam for a layer with parameters, where
 * L = probeLoss(layer.forward(x), delta).
 */
void
checkParamGradients(Layer &layer, const Tensor &input, uint64_t seed)
{
    Rng rng(seed);
    const Tensor out = layer.forward(input);
    const Tensor delta = Tensor::randn(out.shape(), rng);

    layer.zeroGrads();
    layer.forward(input);
    layer.backward(delta);

    // applyUpdate with lr=-1, batch=1 adds the gradient to the
    // parameters; recover it by differencing.
    std::vector<Tensor> before;
    for (Tensor *p : layer.parameters())
        before.push_back(*p);
    layer.applyUpdate(-1.0f, 1);
    std::vector<Tensor> grads;
    {
        const auto params = layer.parameters();
        for (size_t i = 0; i < params.size(); ++i)
            grads.push_back(*params[i] - before[i]);
        // Restore.
        for (size_t i = 0; i < params.size(); ++i)
            *params[i] = before[i];
    }

    const float eps = 1e-2f;
    const auto params = layer.parameters();
    for (size_t p = 0; p < params.size(); ++p) {
        // Probe a handful of entries.
        const int64_t n = params[p]->numel();
        for (int64_t idx = 0; idx < n; idx += std::max<int64_t>(1, n / 5)) {
            const float saved = params[p]->at(idx);
            params[p]->at(idx) = saved + eps;
            const double lp = probeLoss(layer.infer(input), delta);
            params[p]->at(idx) = saved - eps;
            const double lm = probeLoss(layer.infer(input), delta);
            params[p]->at(idx) = saved;
            const double numeric = (lp - lm) / (2.0 * eps);
            EXPECT_NEAR(grads[p].at(idx), numeric, 2e-2)
                << "param " << p << " index " << idx;
        }
    }
}

/** Numerically verify the input gradient of any layer. */
void
checkInputGradient(Layer &layer, const Tensor &input, uint64_t seed)
{
    Rng rng(seed);
    const Tensor out = layer.forward(input);
    const Tensor delta = Tensor::randn(out.shape(), rng);
    layer.zeroGrads();
    layer.forward(input);
    const Tensor grad_in = layer.backward(delta);
    ASSERT_EQ(grad_in.numel(), input.numel());

    const float eps = 1e-2f;
    const int64_t n = input.numel();
    for (int64_t idx = 0; idx < n; idx += std::max<int64_t>(1, n / 6)) {
        Tensor plus = input, minus = input;
        plus.at(idx) += eps;
        minus.at(idx) -= eps;
        const double lp = probeLoss(layer.infer(plus), delta);
        const double lm = probeLoss(layer.infer(minus), delta);
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(grad_in.at(idx), numeric, 3e-2) << "index " << idx;
    }
}

TEST(ConvLayer, OutputShape)
{
    Rng rng(1);
    ConvLayer conv(3, 8, 5, 1, 0, rng);
    EXPECT_EQ(conv.outputShape({3, 28, 28}), (Shape{8, 24, 24}));
    ConvLayer padded(3, 8, 3, 1, 1, rng);
    EXPECT_EQ(padded.outputShape({3, 28, 28}), (Shape{8, 28, 28}));
}

TEST(ConvLayer, Describe)
{
    Rng rng(1);
    EXPECT_EQ(ConvLayer(1, 20, 5, 1, 0, rng).describe(), "conv5x20");
    EXPECT_EQ(ConvLayer(3, 96, 11, 4, 0, rng).describe(), "conv11x96/s4");
}

TEST(ConvLayer, ParamGradients)
{
    Rng rng(2);
    ConvLayer conv(2, 3, 3, 1, 1, rng);
    const Tensor input = Tensor::randn({2, 5, 5}, rng);
    checkParamGradients(conv, input, 21);
}

TEST(ConvLayer, InputGradient)
{
    Rng rng(3);
    ConvLayer conv(2, 2, 3, 1, 0, rng);
    const Tensor input = Tensor::randn({2, 6, 6}, rng);
    checkInputGradient(conv, input, 31);
}

TEST(ConvLayer, ParameterCount)
{
    Rng rng(4);
    ConvLayer conv(3, 8, 5, 1, 0, rng);
    EXPECT_EQ(conv.parameterCount(), 8 * 3 * 5 * 5 + 8);
}

TEST(InnerProductLayer, ForwardMatchesMatVec)
{
    Rng rng(5);
    InnerProductLayer ip(4, 3, rng);
    Tensor x({4}, 1.0f);
    const Tensor out = ip.forward(x);
    const auto params = ip.parameters();
    for (int64_t i = 0; i < 3; ++i) {
        double expect = (*params[1])(i);
        for (int64_t j = 0; j < 4; ++j)
            expect += (*params[0])(i, j);
        EXPECT_NEAR(out(i), expect, 1e-5);
    }
}

TEST(InnerProductLayer, ParamGradients)
{
    Rng rng(6);
    InnerProductLayer ip(6, 4, rng);
    const Tensor input = Tensor::randn({6}, rng);
    checkParamGradients(ip, input, 61);
}

TEST(InnerProductLayer, InputGradient)
{
    Rng rng(7);
    InnerProductLayer ip(5, 3, rng);
    const Tensor input = Tensor::randn({5}, rng);
    checkInputGradient(ip, input, 71);
}

TEST(InnerProductLayer, AcceptsCubeInput)
{
    Rng rng(8);
    InnerProductLayer ip(8, 2, rng);
    const Tensor cube = Tensor::randn({2, 2, 2}, rng);
    const Tensor out = ip.forward(cube);
    EXPECT_EQ(out.shape(), (Shape{2}));
}

TEST(ReluLayer, ForwardClampsNegatives)
{
    ReluLayer relu;
    Tensor x({3});
    x(0) = -1.0f;
    x(1) = 0.0f;
    x(2) = 2.0f;
    const Tensor out = relu.forward(x);
    EXPECT_FLOAT_EQ(out(0), 0.0f);
    EXPECT_FLOAT_EQ(out(1), 0.0f);
    EXPECT_FLOAT_EQ(out(2), 2.0f);
}

TEST(ReluLayer, BackwardMasksByOutput)
{
    // The paper (§4.3) notes f'(u) = f'(d) for ReLU, so the mask
    // derives from the cached *output*.
    ReluLayer relu;
    Tensor x({3});
    x(0) = -1.0f;
    x(1) = 3.0f;
    x(2) = 0.5f;
    relu.forward(x);
    Tensor delta({3}, 1.0f);
    const Tensor grad = relu.backward(delta);
    EXPECT_FLOAT_EQ(grad(0), 0.0f);
    EXPECT_FLOAT_EQ(grad(1), 1.0f);
    EXPECT_FLOAT_EQ(grad(2), 1.0f);
}

TEST(SigmoidLayer, ForwardRange)
{
    SigmoidLayer sig;
    Tensor x({2});
    x(0) = -10.0f;
    x(1) = 10.0f;
    const Tensor out = sig.forward(x);
    EXPECT_LT(out(0), 0.001f);
    EXPECT_GT(out(1), 0.999f);
}

TEST(SigmoidLayer, InputGradient)
{
    Rng rng(9);
    SigmoidLayer sig;
    const Tensor input = Tensor::randn({6}, rng);
    checkInputGradient(sig, input, 91);
}

TEST(MaxPoolLayer, ForwardBackwardRoundTrip)
{
    Rng rng(10);
    MaxPoolLayer pool(2);
    const Tensor input = Tensor::randn({3, 4, 4}, rng);
    const Tensor out = pool.forward(input);
    EXPECT_EQ(out.shape(), (Shape{3, 2, 2}));
    const Tensor delta = Tensor::randn(out.shape(), rng);
    const Tensor grad = pool.backward(delta);
    EXPECT_EQ(grad.shape(), input.shape());
    // Total error mass is conserved by max-pool routing.
    EXPECT_NEAR(grad.sum(), delta.sum(), 1e-4);
}

TEST(AvgPoolLayer, InputGradient)
{
    Rng rng(11);
    AvgPoolLayer pool(2);
    const Tensor input = Tensor::randn({2, 4, 4}, rng);
    checkInputGradient(pool, input, 111);
}

TEST(FlattenLayer, RoundTrip)
{
    Rng rng(12);
    FlattenLayer flat;
    const Tensor input = Tensor::randn({2, 3, 4}, rng);
    const Tensor out = flat.forward(input);
    EXPECT_EQ(out.shape(), (Shape{24}));
    const Tensor grad = flat.backward(out);
    EXPECT_EQ(grad.shape(), input.shape());
}

TEST(Loss, L2LossValueAndDelta)
{
    Tensor y({2});
    y(0) = 1.0f;
    y(1) = 3.0f;
    Tensor t({2});
    t(0) = 0.0f;
    t(1) = 1.0f;
    const LossResult r = l2Loss(y, t);
    EXPECT_NEAR(r.loss, 0.5 * (1.0 + 4.0), 1e-6);
    EXPECT_FLOAT_EQ(r.delta(0), 1.0f);
    EXPECT_FLOAT_EQ(r.delta(1), 2.0f);
}

TEST(Loss, SoftmaxSumsToOne)
{
    Tensor logits({4});
    logits(0) = 1.0f;
    logits(1) = 2.0f;
    logits(2) = 3.0f;
    logits(3) = 4.0f;
    const Tensor p = softmax(logits);
    EXPECT_NEAR(p.sum(), 1.0, 1e-6);
    EXPECT_GT(p(3), p(0));
}

TEST(Loss, SoftmaxIsShiftInvariant)
{
    Tensor a({3});
    a(0) = 100.0f;
    a(1) = 101.0f;
    a(2) = 102.0f;
    Tensor b({3});
    b(0) = 0.0f;
    b(1) = 1.0f;
    b(2) = 2.0f;
    const Tensor pa = softmax(a), pb = softmax(b);
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_NEAR(pa(i), pb(i), 1e-6);
}

TEST(Loss, SoftmaxLossGradientSumsToZero)
{
    Rng rng(13);
    const Tensor logits = Tensor::randn({5}, rng);
    const LossResult r = softmaxLoss(logits, 2);
    EXPECT_NEAR(r.delta.sum(), 0.0, 1e-5);
    EXPECT_LT(r.delta(2), 0.0f); // true-class gradient is negative
    EXPECT_GT(r.loss, 0.0);
}

TEST(LayerKindNames, AllDistinct)
{
    EXPECT_STREQ(layerKindName(LayerKind::Conv), "conv");
    EXPECT_STREQ(layerKindName(LayerKind::MaxPool), "maxpool");
    EXPECT_STREQ(layerKindName(LayerKind::InnerProduct), "ip");
}

} // namespace
} // namespace nn
} // namespace pipelayer
