/**
 * @file
 * Integration tests of the functional training substrate: networks,
 * batched SGD, convergence on synthetic tasks.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "nn/layers.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"
#include "workloads/synthetic_data.hh"

namespace pipelayer {
namespace nn {
namespace {

/** A small MLP over 1x8x8 inputs. */
Network
smallMlp(Rng &rng)
{
    Network net("mlp", {1, 8, 8});
    net.add(std::make_unique<FlattenLayer>());
    net.add(std::make_unique<InnerProductLayer>(64, 32, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<InnerProductLayer>(32, 4, rng));
    return net;
}

/** A small CNN over 1x8x8 inputs. */
Network
smallCnn(Rng &rng)
{
    Network net("cnn", {1, 8, 8});
    net.add(std::make_unique<ConvLayer>(1, 4, 3, 1, 1, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<MaxPoolLayer>(2));
    net.add(std::make_unique<FlattenLayer>());
    net.add(std::make_unique<InnerProductLayer>(4 * 4 * 4, 4, rng));
    return net;
}

workloads::SyntheticTask
smallTask()
{
    workloads::SyntheticConfig config;
    config.classes = 4;
    config.image_size = 8;
    config.train_per_class = 30;
    config.test_per_class = 10;
    config.noise = 0.25f;
    config.seed = 77;
    return workloads::makeSyntheticTask(config);
}

TEST(Network, ShapePropagationAndDescribe)
{
    Rng rng(1);
    Network net = smallCnn(rng);
    EXPECT_EQ(net.outputShape(), (Shape{4}));
    EXPECT_EQ(net.numLayers(), 5u);
    EXPECT_NE(net.describe().find("conv3x4"), std::string::npos);
    EXPECT_EQ(net.layerInputShape(0), (Shape{1, 8, 8}));
    EXPECT_EQ(net.layerInputShape(3), (Shape{4, 4, 4}));
}

TEST(Network, ParameterCount)
{
    Rng rng(2);
    Network net = smallMlp(rng);
    EXPECT_EQ(net.parameterCount(), 64 * 32 + 32 + 32 * 4 + 4);
}

TEST(Network, ForwardInferAgree)
{
    Rng rng(3);
    Network net = smallCnn(rng);
    const Tensor x = Tensor::randn({1, 8, 8}, rng);
    const Tensor a = net.forward(x);
    const Tensor b = net.infer(x);
    for (int64_t i = 0; i < a.numel(); ++i)
        EXPECT_FLOAT_EQ(a.at(i), b.at(i));
}

TEST(Training, MlpLossDecreases)
{
    Rng rng(4);
    Network net = smallMlp(rng);
    auto task = smallTask();
    TrainConfig config;
    config.epochs = 8;
    config.batch_size = 8;
    config.learning_rate = 0.1f;
    Rng train_rng(5);
    const TrainResult result =
        train(net, task.train, task.test, config, train_rng);
    ASSERT_EQ(result.epoch_loss.size(), 8u);
    EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front() * 0.7);
}

TEST(Training, MlpLearnsTask)
{
    Rng rng(6);
    Network net = smallMlp(rng);
    auto task = smallTask();
    TrainConfig config;
    config.epochs = 12;
    config.batch_size = 8;
    config.learning_rate = 0.1f;
    Rng train_rng(7);
    const TrainResult result =
        train(net, task.train, task.test, config, train_rng);
    EXPECT_GT(result.final_test_accuracy, 0.8);
}

TEST(Training, CnnLearnsTask)
{
    Rng rng(8);
    Network net = smallCnn(rng);
    auto task = smallTask();
    TrainConfig config;
    config.epochs = 12;
    config.batch_size = 8;
    config.learning_rate = 0.1f;
    Rng train_rng(9);
    const TrainResult result =
        train(net, task.train, task.test, config, train_rng);
    EXPECT_GT(result.final_test_accuracy, 0.8);
}

TEST(Training, BatchAveragingMatchesManualUpdate)
{
    // trainBatch must apply W -= lr * (1/B) Σ grads: two identical
    // samples in a batch behave like one sample with batch 1.
    Rng rng_a(10), rng_b(10);
    Network net_a("a", {1, 8, 8});
    net_a.add(std::make_unique<FlattenLayer>());
    net_a.add(std::make_unique<InnerProductLayer>(64, 4, rng_a));
    Network net_b("b", {1, 8, 8});
    net_b.add(std::make_unique<FlattenLayer>());
    net_b.add(std::make_unique<InnerProductLayer>(64, 4, rng_b));

    Rng data_rng(11);
    const Tensor x = Tensor::randn({1, 8, 8}, data_rng);

    net_a.trainBatch({x, x}, {1, 1}, 0.1f);
    net_b.trainBatch({x}, {1}, 0.1f);

    auto params_a = net_a.layer(1).parameters();
    auto params_b = net_b.layer(1).parameters();
    for (int64_t i = 0; i < params_a[0]->numel(); ++i)
        EXPECT_NEAR(params_a[0]->at(i), params_b[0]->at(i), 1e-6);
}

TEST(Training, DeterministicGivenSeeds)
{
    auto run = [] {
        Rng rng(12);
        Network net = smallMlp(rng);
        auto task = smallTask();
        TrainConfig config;
        config.epochs = 3;
        config.batch_size = 8;
        Rng train_rng(13);
        return train(net, task.train, task.test, config, train_rng)
            .epoch_loss;
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Dataset, ShuffleKeepsPairsAligned)
{
    auto task = smallTask();
    // Tag each input with its label in pixel 0 to detect misalignment.
    for (size_t i = 0; i < task.train.size(); ++i)
        task.train.inputs[i].at(0) =
            static_cast<float>(task.train.labels[i]);
    Rng rng(14);
    task.train.shuffle(rng);
    for (size_t i = 0; i < task.train.size(); ++i)
        EXPECT_EQ(static_cast<int64_t>(task.train.inputs[i].at(0)),
                  task.train.labels[i]);
}

TEST(Dataset, HeadTakesPrefix)
{
    auto task = smallTask();
    const Dataset head = task.train.head(5);
    EXPECT_EQ(head.size(), 5u);
    EXPECT_EQ(head.labels[0], task.train.labels[0]);
}

TEST(SyntheticData, DeterministicAndBounded)
{
    const auto a = workloads::makeStudyTask();
    const auto b = workloads::makeStudyTask();
    ASSERT_EQ(a.train.size(), b.train.size());
    for (int64_t i = 0; i < a.train.inputs[0].numel(); ++i) {
        EXPECT_FLOAT_EQ(a.train.inputs[0].at(i), b.train.inputs[0].at(i));
        EXPECT_GE(a.train.inputs[0].at(i), 0.0f);
        EXPECT_LE(a.train.inputs[0].at(i), 1.0f);
    }
}

TEST(SyntheticData, ClassesAreSeparable)
{
    // Nearest-prototype classification on the noiseless means should
    // be far above chance, otherwise the Fig. 13 study is meaningless.
    const auto task = workloads::makeStudyTask();
    // Compute class means from train, classify test by nearest mean.
    const int64_t classes = task.config.classes;
    const int64_t numel = task.train.inputs[0].numel();
    std::vector<std::vector<double>> means(
        static_cast<size_t>(classes),
        std::vector<double>(static_cast<size_t>(numel), 0.0));
    std::vector<int64_t> counts(static_cast<size_t>(classes), 0);
    for (size_t i = 0; i < task.train.size(); ++i) {
        const auto c = static_cast<size_t>(task.train.labels[i]);
        ++counts[c];
        for (int64_t j = 0; j < numel; ++j)
            means[c][static_cast<size_t>(j)] += task.train.inputs[i].at(j);
    }
    for (size_t c = 0; c < means.size(); ++c)
        for (auto &v : means[c])
            v /= static_cast<double>(counts[c]);

    int64_t correct = 0;
    for (size_t i = 0; i < task.test.size(); ++i) {
        double best = 1e30;
        int64_t best_c = -1;
        for (int64_t c = 0; c < classes; ++c) {
            double dist = 0.0;
            for (int64_t j = 0; j < numel; ++j) {
                const double d = task.test.inputs[i].at(j) -
                                 means[static_cast<size_t>(c)]
                                      [static_cast<size_t>(j)];
                dist += d * d;
            }
            if (dist < best) {
                best = dist;
                best_c = c;
            }
        }
        correct += best_c == task.test.labels[i] ? 1 : 0;
    }
    const double accuracy = static_cast<double>(correct) /
                            static_cast<double>(task.test.size());
    EXPECT_GT(accuracy, 0.9);
}

} // namespace
} // namespace nn
} // namespace pipelayer
