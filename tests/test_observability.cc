/**
 * @file
 * Tests of the observability layer: the JSON writer/parser, the
 * Chrome-trace recorder, the stats registration contracts and the
 * validated reporting API (PR: end-to-end observability).
 *
 * The determinism tests assert the ISSUE's headline guarantee: a
 * stats dump and a trace are byte-identical at any worker thread
 * count, because every counter is committed from serial code or from
 * deterministic values.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "arch/granularity.hh"
#include "arch/mapping.hh"
#include "arch/pipeline.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/trace.hh"
#include "core/pipelined_trainer.hh"
#include "nn/layers.hh"
#include "sim/simulator.hh"
#include "workloads/layer_spec.hh"

namespace pipelayer {
namespace {

// ---------------------------------------------------------------------
// JSON value model + writer + parser
// ---------------------------------------------------------------------

TEST(Json, EscapesControlAndQuoteCharacters)
{
    // escape() returns the quoted JSON string literal.
    EXPECT_EQ(json::Value::escape("plain"), "\"plain\"");
    EXPECT_EQ(json::Value::escape("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(json::Value::escape("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(json::Value::escape("a\nb\tc"), "\"a\\nb\\tc\"");
    EXPECT_EQ(json::Value::escape(std::string("a\x01z")),
              "\"a\\u0001z\"");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    json::Value v = json::Value::object();
    v["zeta"] = json::Value(1);
    v["alpha"] = json::Value(2);
    v["mid"] = json::Value(3);
    const auto &members = v.members();
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(members[0].first, "zeta");
    EXPECT_EQ(members[1].first, "alpha");
    EXPECT_EQ(members[2].first, "mid");
}

TEST(Json, RoundTripsThroughDumpAndParse)
{
    json::Value v = json::Value::object();
    v["name"] = json::Value("pipelayer \"quoted\"\n");
    v["count"] = json::Value(int64_t{1234567890123});
    v["ratio"] = json::Value(0.1);
    v["neg"] = json::Value(-2.5e-8);
    v["yes"] = json::Value(true);
    v["no"] = json::Value(false);
    v["nothing"] = json::Value();
    json::Value arr = json::Value::array();
    for (int i = 0; i < 4; ++i)
        arr.push(json::Value(i));
    v["seq"] = std::move(arr);

    for (int indent : {-1, 0, 1, 2}) {
        const json::Value back = json::parse(v.dump(indent));
        EXPECT_TRUE(back == v) << "indent " << indent;
    }
}

TEST(Json, NumbersSurviveRoundTripExactly)
{
    for (double x : {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 1e-300, 1e300,
                     3.141592653589793, 42.45, 1485.0}) {
        const json::Value v(x);
        const json::Value back = json::parse(v.dump());
        EXPECT_EQ(back.asNumber(), x) << v.dump();
    }
}

TEST(Json, ParserRejectsMalformedInput)
{
    EXPECT_THROW(json::parse(""), json::ParseError);
    EXPECT_THROW(json::parse("{"), json::ParseError);
    EXPECT_THROW(json::parse("[1,]"), json::ParseError);
    EXPECT_THROW(json::parse("{\"a\":1,}"), json::ParseError);
    EXPECT_THROW(json::parse("\"unterminated"), json::ParseError);
    EXPECT_THROW(json::parse("tru"), json::ParseError);
    EXPECT_THROW(json::parse("1 2"), json::ParseError);
}

TEST(Json, ParsesUnicodeEscapes)
{
    const json::Value v = json::parse("\"a\\u00e9b\"");
    EXPECT_EQ(v.asString(), "a\xc3\xa9"
                            "b");
}

TEST(Json, TableRendersCsvAndJson)
{
    Table t({"name", "value"});
    t.addRow({"plain", "1"});
    t.addSeparator();
    t.addRow({"with,comma", "q\"uote"});
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(),
              "name,value\nplain,1\n\"with,comma\",\"q\"\"uote\"\n");

    const json::Value rows = t.toJson();
    ASSERT_EQ(rows.size(), 2u); // separator dropped
    EXPECT_EQ(rows.at(size_t{0}).at("name").asString(), "plain");
    EXPECT_EQ(rows.at(size_t{1}).at("value").asString(), "q\"uote");
}

// ---------------------------------------------------------------------
// SimReport toJson schema + SimConfig validation
// ---------------------------------------------------------------------

workloads::NetworkSpec
chainSpec(int64_t depth)
{
    workloads::NetworkSpec spec;
    spec.name = "obs-chain";
    for (int64_t i = 0; i < depth; ++i)
        spec.layers.push_back(workloads::LayerSpec::innerProduct(32, 32));
    return spec;
}

TEST(SimReportJson, MatchesDocumentedSchema)
{
    const sim::Simulator simulator(chainSpec(3), reram::DeviceParams());
    const sim::SimReport report =
        simulator.run(sim::SimConfig::training(8, 32));
    const json::Value v = report.toJson();

    // The top-level member list is the documented schema
    // (docs/observability.md); a change here is a breaking change for
    // BENCH_*.json consumers and must update the doc.
    std::vector<std::string> keys;
    for (const auto &kv : v.members())
        keys.push_back(kv.first);
    const std::vector<std::string> expected = {
        "network", "config", "logical_cycles", "cycle_time_s",
        "total_time_s", "time_per_image_s", "throughput_img_s",
        "energy", "energy_per_image_j", "area_mm2", "morphable_arrays",
        "memory_buffer_entries", "ops_per_image", "gops_per_s",
        "gops_per_s_per_mm2", "gops_per_w", "buffer_violations",
        "structural_hazards", "per_layer"};
    EXPECT_EQ(keys, expected);

    EXPECT_EQ(v.at("network").asString(), "obs-chain");
    EXPECT_EQ(v.at("config").at("phase").asString(), "training");
    EXPECT_EQ(v.at("config").at("batch_size").asInt(), 8);
    EXPECT_EQ(v.at("logical_cycles").asInt(), report.logical_cycles);
    EXPECT_DOUBLE_EQ(v.at("energy").at("total_j").asNumber(),
                     report.energy.total());
    ASSERT_EQ(v.at("per_layer").size(), 3u);
    const json::Value &layer0 = v.at("per_layer").at(size_t{0});
    EXPECT_DOUBLE_EQ(layer0.at("forward_energy_j").asNumber(),
                     report.per_layer[0].forward_energy);

    // And the whole report round-trips through the writer.
    EXPECT_TRUE(json::parse(v.dump(1)) == v);
}

TEST(SimConfigValidation, ThrowsTypedErrorsInsteadOfAsserting)
{
    sim::SimConfig bad;
    bad.batch_size = 0;
    EXPECT_THROW(bad.validate(), ConfigError);

    bad = sim::SimConfig();
    bad.num_images = -4;
    EXPECT_THROW(bad.validate(), ConfigError);

    bad = sim::SimConfig();
    bad.phase = sim::Phase::Training;
    bad.batch_size = 64;
    bad.num_images = 100; // not a multiple of 64
    EXPECT_THROW(bad.validate(), ConfigError);

    // Testing phase has no divisibility requirement.
    sim::SimConfig ok = sim::SimConfig::testing(100);
    ok.batch_size = 64;
    EXPECT_NO_THROW(ok.validate());

    EXPECT_THROW(sim::SimConfig::training(64, 100), ConfigError);
    EXPECT_NO_THROW(sim::SimConfig::training(64, 128));

    const sim::Simulator simulator(chainSpec(2), reram::DeviceParams());
    sim::SimConfig cfg;
    cfg.phase = sim::Phase::Training;
    cfg.batch_size = 3;
    cfg.num_images = 10;
    EXPECT_THROW(simulator.run(cfg), ConfigError);
}

// ---------------------------------------------------------------------
// StatGroup contracts
// ---------------------------------------------------------------------

TEST(StatGroup, RegisterResetAndDump)
{
    stats::StatGroup group("unit");
    stats::Scalar a, b;
    group.registerScalar("a", &a, "first");
    group.registerScalar("b", &b, "second");
    group.addFormula("sum", [&] { return a.value() + b.value(); },
                     "a + b");
    a += 2.0;
    b += 3.0;
    EXPECT_DOUBLE_EQ(group.lookup("sum"), 5.0);
    EXPECT_TRUE(group.has("a"));
    EXPECT_FALSE(group.has("missing"));

    const std::string dump = group.dumpString();
    EXPECT_NE(dump.find("unit.a"), std::string::npos);
    EXPECT_NE(dump.find("# first"), std::string::npos);

    group.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
    EXPECT_DOUBLE_EQ(group.lookup("sum"), 0.0);
}

TEST(StatGroup, FormulaLookupsAreCachedUntilDumpOrReset)
{
    stats::StatGroup group("unit");
    stats::Scalar a;
    group.registerScalar("a", &a, "input");
    int evals = 0;
    group.addFormula(
        "twice_a", [&] { ++evals; return 2.0 * a.value(); }, "2a");

    a += 3.0;
    EXPECT_DOUBLE_EQ(group.lookup("twice_a"), 6.0);
    EXPECT_EQ(evals, 1);
    // Repeated lookups between dumps reuse one evaluation.
    EXPECT_DOUBLE_EQ(group.lookup("twice_a"), 6.0);
    EXPECT_EQ(evals, 1);

    // dump() always evaluates fresh — a formula can never drift from
    // its inputs in dumped output — and refreshes the cache.
    a += 1.0;
    group.dumpString();
    EXPECT_EQ(evals, 2);
    EXPECT_DOUBLE_EQ(group.lookup("twice_a"), 8.0);
    EXPECT_EQ(evals, 2);

    // resetAll() starts a new measurement interval: scalars zeroed
    // and formula caches invalidated (the PR 3 resetAll bugfix).
    group.resetAll();
    EXPECT_DOUBLE_EQ(group.lookup("twice_a"), 0.0);
    EXPECT_EQ(evals, 3);
}

#ifdef NDEBUG
TEST(StatGroup, ResetAllSkipsDeadEntriesInRelease)
{
    // Release builds must skip a dead registration (the owning
    // component is gone) while still resetting the live ones — the
    // old behaviour asserted even with NDEBUG.
    stats::StatGroup group("unit");
    stats::Scalar live;
    group.registerScalar("live", &live, "survives");
    {
        stats::Scalar temp;
        group.registerScalar("gone", &temp, "dies early");
        temp += 7.0;
    }
    live += 5.0;
    group.resetAll();
    EXPECT_DOUBLE_EQ(live.value(), 0.0);
}
#else
TEST(StatGroupDeathTest, ResetAllAssertsOnDeadEntryInDebug)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    stats::StatGroup group("unit");
    {
        stats::Scalar temp;
        group.registerScalar("gone", &temp, "dies early");
    }
    EXPECT_DEATH(group.resetAll(), "reset after its owning");
}
#endif

TEST(StatGroupDeathTest, NameCollisionPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    stats::StatGroup group("unit");
    stats::Scalar a, b;
    group.registerScalar("x", &a, "first");
    EXPECT_DEATH(group.registerScalar("x", &b, "duplicate"),
                 "registered twice");
    EXPECT_DEATH(group.addFormula("x", [] { return 0.0; }, "dup"),
                 "registered twice");
}

TEST(StatGroup, ScalarDestructionMarksEntryDead)
{
    stats::StatGroup group("unit");
    {
        stats::Scalar temp;
        group.registerScalar("gone", &temp, "dies early");
        temp += 7.0;
        EXPECT_NE(group.dumpString().find("gone"), std::string::npos);
    }
    // Release builds skip the dead entry instead of reading freed
    // memory; debug builds assert at dump time (PL_DEBUG_ASSERT).
#ifdef NDEBUG
    EXPECT_EQ(group.dumpString().find("gone"), std::string::npos);
    group.resetAll(); // must not touch the dead registration
#endif
}

TEST(StatGroup, GroupDestructionUnlinksScalars)
{
    stats::Scalar survivor;
    {
        stats::StatGroup group("unit");
        group.registerScalar("s", &survivor, "outlives the group");
        survivor += 1.0;
    }
    // ~Scalar must not call into the destroyed group.
    survivor += 1.0;
    EXPECT_DOUBLE_EQ(survivor.value(), 2.0);
}

TEST(StatGroup, CopiedScalarCarriesValueNotRegistration)
{
    stats::StatGroup group("unit");
    stats::Scalar original;
    group.registerScalar("v", &original, "tracked");
    original += 4.0;
    stats::Scalar copy = original;
    EXPECT_DOUBLE_EQ(copy.value(), 4.0);
    // The copy dying must not mark the registration dead.
    { stats::Scalar dying = original; (void)dying; }
    original += 1.0;
    EXPECT_DOUBLE_EQ(group.lookup("v"), 5.0);
}

// ---------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------

TEST(TraceRecorder, EmitsValidNestedChromeTrace)
{
    trace::TraceRecorder rec("unit-test");
    const int64_t t0 = rec.addTrack("outer");
    rec.begin(t0, "span", "cat", 0);
    rec.begin(t0, "inner", "cat", 1);
    rec.end(t0, 3);   // inner: [1, 3)
    rec.end(t0, 5);   // outer: [0, 5)
    rec.complete(t0, "tail", "cat", 5, 2);

    const json::Value doc = json::parse(rec.toJson().dump(1));
    const json::Value &events = doc.at("traceEvents");
    int64_t x_events = 0;
    for (size_t i = 0; i < events.size(); ++i) {
        if (events.at(i).at("ph").asString() == "X")
            ++x_events;
    }
    EXPECT_EQ(x_events, 3);
    EXPECT_EQ(rec.lastCycle(), 7);
}

TEST(PipelineSchedulerTrace, CycleCountMatchesPaperFormula)
{
    const int64_t depth = 3, batch = 4, images = 8;
    const auto spec = chainSpec(depth);
    const reram::DeviceParams params;
    const auto g = arch::GranularityConfig::naive(spec);
    const arch::NetworkMapping map(spec, g, params, true, batch);
    arch::ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = batch;
    config.num_images = images;
    arch::PipelineScheduler scheduler(map, config);
    trace::TraceRecorder rec("sched");
    scheduler.setTrace(&rec);
    const arch::ScheduleStats stats = scheduler.run();

    EXPECT_EQ(stats.total_cycles,
              arch::PipelineScheduler::analyticTrainingCycles(
                  depth, images, batch, true));
    EXPECT_EQ(rec.lastCycle(), stats.total_cycles);
    // One track per unit row: L forward, 1 seed, L-1 error-back,
    // L derivative, 1 update.
    EXPECT_EQ(rec.trackCount(), 3 * depth + 1);
    // The trace parses as JSON.
    EXPECT_NO_THROW(json::parse(rec.toJson().dump()));
}

// ---------------------------------------------------------------------
// PipelinedTrainer: counters, trace, determinism across threads
// ---------------------------------------------------------------------

nn::Network
trainerMlp(uint64_t seed)
{
    Rng rng(seed);
    nn::Network net("obs-mlp", {1, 8, 8});
    net.add(std::make_unique<nn::FlattenLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(64, 24, rng));
    net.add(std::make_unique<nn::SigmoidLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(24, 4, rng));
    return net;
}

std::pair<std::vector<Tensor>, std::vector<int64_t>>
trainerBatch(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Tensor> inputs;
    std::vector<int64_t> labels;
    for (int64_t i = 0; i < n; ++i) {
        Tensor x({1, 8, 8});
        for (int64_t j = 0; j < x.numel(); ++j)
            x.at(j) = static_cast<float>(rng.uniform());
        inputs.push_back(std::move(x));
        labels.push_back(static_cast<int64_t>(rng.uniformInt(4)));
    }
    return {std::move(inputs), std::move(labels)};
}

TEST(TrainerObservability, TraceSpansLogicalCyclesExactly)
{
    nn::Network net = trainerMlp(7);
    core::PipelinedTrainer trainer(net);
    trace::TraceRecorder rec("trainer");
    trainer.setTrace(&rec);
    const auto [inputs, labels] = trainerBatch(6, 21);
    const auto result = trainer.trainBatch(inputs, labels, 0.05f);

    EXPECT_EQ(result.logical_cycles, 2 * trainer.depth() + 6 + 1);
    EXPECT_EQ(rec.lastCycle(), result.logical_cycles);
    EXPECT_EQ(rec.trackCount(), 2 * trainer.depth() + 2);

    // Work accounting: L forwards + 1 seed + L backward pairs per
    // image, all committed through phase 2.
    const int64_t L = trainer.depth();
    EXPECT_EQ(result.forward_ops, 6 * L);
    EXPECT_EQ(result.error_seeds, 6);
    EXPECT_EQ(result.backward_ops, 6 * L);
    EXPECT_EQ(result.commits,
              result.forward_ops + result.error_seeds +
                  result.backward_ops);

    // A second batch appends; the trace keeps growing monotonically.
    const auto result2 = trainer.trainBatch(inputs, labels, 0.05f);
    EXPECT_EQ(rec.lastCycle(),
              result.logical_cycles + result2.logical_cycles);

    const json::Value doc = json::parse(rec.toJson().dump(1));
    EXPECT_GT(doc.at("traceEvents").size(), 0u);

    const json::Value rj = result.toJson();
    EXPECT_EQ(rj.at("logical_cycles").asInt(), result.logical_cycles);
    EXPECT_EQ(rj.at("commits").asInt(), result.commits);
}

/** Stats dump of one pipelined training run at @p threads threads. */
std::string
trainerStatsDump(int64_t threads)
{
    const int64_t saved = threadCount();
    setThreadCount(threads);
    nn::Network net = trainerMlp(13);
    core::PipelinedTrainer trainer(net);
    stats::StatGroup group("trainer");
    trainer.addStats(group);
    const auto [inputs, labels] = trainerBatch(8, 31);
    trainer.trainBatch(inputs, labels, 0.1f, nn::LossKind::Softmax);
    trainer.trainBatch(inputs, labels, 0.1f, nn::LossKind::Softmax);
    const std::string dump = group.dumpString();
    setThreadCount(saved);
    return dump;
}

TEST(Determinism, TrainerStatsDumpIsByteIdenticalAcrossThreadCounts)
{
    const std::string serial = trainerStatsDump(1);
    const std::string parallel = trainerStatsDump(4);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("trainer.cycles"), std::string::npos);
    EXPECT_NE(serial.find("trainer.commits"), std::string::npos);
}

/** SimReport stats dump at @p threads threads. */
std::string
simStatsDump(int64_t threads)
{
    const int64_t saved = threadCount();
    setThreadCount(threads);
    const sim::Simulator simulator(chainSpec(4), reram::DeviceParams());
    const sim::SimReport report =
        simulator.run(sim::SimConfig::training(8, 32));
    std::ostringstream os;
    report.dumpStats(os);
    setThreadCount(saved);
    return os.str();
}

TEST(Determinism, SimStatsDumpIsByteIdenticalAcrossThreadCounts)
{
    const std::string serial = simStatsDump(1);
    const std::string parallel = simStatsDump(4);
    EXPECT_EQ(serial, parallel);
    // Hierarchical per-layer names are present (ISSUE example).
    EXPECT_NE(serial.find("sim.obs-chain.layer3.forward_energy_j"),
              std::string::npos);
}

} // namespace
} // namespace pipelayer
