/**
 * @file
 * Unit tests for the tensor primitives: convolution (forward and the
 * paper's rotated-kernel backward forms), pooling, matrix products
 * and im2col.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace pipelayer {
namespace {

/** 1x3x3 input with values 1..9. */
Tensor
sequentialInput()
{
    Tensor in({1, 3, 3});
    for (int64_t i = 0; i < 9; ++i)
        in.at(i) = static_cast<float>(i + 1);
    return in;
}

TEST(Conv2d, IdentityKernel)
{
    const Tensor in = sequentialInput();
    Tensor k({1, 1, 1, 1});
    k(0, 0, 0, 0) = 1.0f;
    const Tensor out = ops::conv2d(in, k, Tensor());
    for (int64_t i = 0; i < 9; ++i)
        EXPECT_FLOAT_EQ(out.at(i), in.at(i));
}

TEST(Conv2d, SumKernelComputesWindowSums)
{
    const Tensor in = sequentialInput();
    Tensor k({1, 1, 2, 2}, 1.0f);
    const Tensor out = ops::conv2d(in, k, Tensor());
    EXPECT_EQ(out.shape(), (Shape{1, 2, 2}));
    EXPECT_FLOAT_EQ(out(0, 0, 0), 1 + 2 + 4 + 5);
    EXPECT_FLOAT_EQ(out(0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(Conv2d, BiasIsAdded)
{
    const Tensor in = sequentialInput();
    Tensor k({1, 1, 1, 1});
    k(0, 0, 0, 0) = 0.0f;
    Tensor b({1});
    b(0) = 3.5f;
    const Tensor out = ops::conv2d(in, k, b);
    EXPECT_FLOAT_EQ(out(0, 1, 1), 3.5f);
}

TEST(Conv2d, StrideSkipsPositions)
{
    const Tensor in = sequentialInput();
    Tensor k({1, 1, 1, 1});
    k(0, 0, 0, 0) = 1.0f;
    const Tensor out = ops::conv2d(in, k, Tensor(), /*stride=*/2);
    EXPECT_EQ(out.shape(), (Shape{1, 2, 2}));
    EXPECT_FLOAT_EQ(out(0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(out(0, 0, 1), 3.0f);
    EXPECT_FLOAT_EQ(out(0, 1, 0), 7.0f);
}

TEST(Conv2d, PaddingPreservesExtent)
{
    const Tensor in = sequentialInput();
    Tensor k({1, 1, 3, 3}, 1.0f);
    const Tensor out = ops::conv2d(in, k, Tensor(), 1, /*pad=*/1);
    EXPECT_EQ(out.shape(), (Shape{1, 3, 3}));
    // Centre output = sum of all nine inputs.
    EXPECT_FLOAT_EQ(out(0, 1, 1), 45.0f);
    // Corner output only sees a 2x2 patch.
    EXPECT_FLOAT_EQ(out(0, 0, 0), 1 + 2 + 4 + 5);
}

TEST(Conv2d, MultiChannelAccumulates)
{
    Tensor in({2, 2, 2}, 1.0f);
    Tensor k({1, 2, 2, 2}, 1.0f);
    const Tensor out = ops::conv2d(in, k, Tensor());
    EXPECT_EQ(out.shape(), (Shape{1, 1, 1}));
    EXPECT_FLOAT_EQ(out(0, 0, 0), 8.0f);
}

TEST(Rot180, SwapsChannelsAndReversesTaps)
{
    Tensor k({1, 2, 2, 2});
    for (int64_t i = 0; i < k.numel(); ++i)
        k.at(i) = static_cast<float>(i);
    const Tensor r = ops::rot180(k);
    EXPECT_EQ(r.shape(), (Shape{2, 1, 2, 2}));
    // k(0, 1, 0, 1) maps to r(1, 0, 1, 0).
    EXPECT_FLOAT_EQ(r(1, 0, 1, 0), k(0, 1, 0, 1));
    EXPECT_FLOAT_EQ(r(0, 0, 1, 1), k(0, 0, 0, 0));
}

TEST(ZeroPad, AddsBorder)
{
    const Tensor in = sequentialInput();
    const Tensor out = ops::zeroPad(in, 2);
    EXPECT_EQ(out.shape(), (Shape{1, 7, 7}));
    EXPECT_FLOAT_EQ(out(0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out(0, 2, 2), 1.0f);
    EXPECT_FLOAT_EQ(out(0, 4, 4), 9.0f);
}

/**
 * Numerical check of conv2dBackwardInput: perturb an input element,
 * watch the loss Σ(out·delta) change by delta_in at that element.
 */
TEST(ConvBackward, InputGradientMatchesNumerical)
{
    Rng rng(3);
    const Tensor in = Tensor::randn({2, 5, 5}, rng);
    const Tensor k = Tensor::randn({3, 2, 3, 3}, rng);
    const Tensor delta = Tensor::randn({3, 3, 3}, rng);

    const Tensor grad = ops::conv2dBackwardInput(delta, k);
    ASSERT_EQ(grad.shape(), in.shape());

    const float eps = 1e-3f;
    for (int64_t idx : {0L, 7L, 24L, 49L}) {
        Tensor plus = in, minus = in;
        plus.at(idx) += eps;
        minus.at(idx) -= eps;
        const Tensor out_p = ops::conv2d(plus, k, Tensor());
        const Tensor out_m = ops::conv2d(minus, k, Tensor());
        double numeric = 0.0;
        for (int64_t i = 0; i < out_p.numel(); ++i)
            numeric += (out_p.at(i) - out_m.at(i)) * delta.at(i);
        numeric /= 2.0 * eps;
        EXPECT_NEAR(grad.at(idx), numeric, 5e-2);
    }
}

TEST(ConvBackward, InputGradientWithPadding)
{
    Rng rng(4);
    const Tensor in = Tensor::randn({1, 4, 4}, rng);
    const Tensor k = Tensor::randn({2, 1, 3, 3}, rng);
    const Tensor fwd = ops::conv2d(in, k, Tensor(), 1, 1);
    const Tensor delta = Tensor::randn(fwd.shape(), rng);

    const Tensor grad = ops::conv2dBackwardInput(delta, k, 1);
    ASSERT_EQ(grad.shape(), in.shape());

    const float eps = 1e-3f;
    for (int64_t idx : {0L, 5L, 15L}) {
        Tensor plus = in, minus = in;
        plus.at(idx) += eps;
        minus.at(idx) -= eps;
        const Tensor out_p = ops::conv2d(plus, k, Tensor(), 1, 1);
        const Tensor out_m = ops::conv2d(minus, k, Tensor(), 1, 1);
        double numeric = 0.0;
        for (int64_t i = 0; i < out_p.numel(); ++i)
            numeric += (out_p.at(i) - out_m.at(i)) * delta.at(i);
        numeric /= 2.0 * eps;
        EXPECT_NEAR(grad.at(idx), numeric, 5e-2);
    }
}

TEST(ConvBackward, KernelGradientMatchesNumerical)
{
    Rng rng(5);
    const Tensor in = Tensor::randn({2, 4, 4}, rng);
    const Tensor k = Tensor::randn({2, 2, 2, 2}, rng);
    const Tensor fwd = ops::conv2d(in, k, Tensor());
    const Tensor delta = Tensor::randn(fwd.shape(), rng);

    const Tensor grad = ops::conv2dBackwardKernel(in, delta, 2, 2);
    ASSERT_EQ(grad.shape(), k.shape());

    const float eps = 1e-3f;
    for (int64_t idx : {0L, 3L, 9L, 15L}) {
        Tensor plus = k, minus = k;
        plus.at(idx) += eps;
        minus.at(idx) -= eps;
        const Tensor out_p = ops::conv2d(in, plus, Tensor());
        const Tensor out_m = ops::conv2d(in, minus, Tensor());
        double numeric = 0.0;
        for (int64_t i = 0; i < out_p.numel(); ++i)
            numeric += (out_p.at(i) - out_m.at(i)) * delta.at(i);
        numeric /= 2.0 * eps;
        EXPECT_NEAR(grad.at(idx), numeric, 5e-2);
    }
}

TEST(MaxPool, SelectsWindowMaxAndIndices)
{
    Tensor in({1, 4, 4});
    for (int64_t i = 0; i < 16; ++i)
        in.at(i) = static_cast<float>(i);
    Tensor indices;
    const Tensor out = ops::maxPool(in, 2, &indices);
    EXPECT_EQ(out.shape(), (Shape{1, 2, 2}));
    EXPECT_FLOAT_EQ(out(0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out(0, 1, 1), 15.0f);
    EXPECT_EQ(static_cast<int64_t>(indices(0, 0, 0)), 5);
}

TEST(MaxPool, BackwardRoutesToArgmax)
{
    Tensor in({1, 2, 2});
    in(0, 0, 0) = 1.0f;
    in(0, 0, 1) = 4.0f;
    in(0, 1, 0) = 2.0f;
    in(0, 1, 1) = 3.0f;
    Tensor indices;
    const Tensor out = ops::maxPool(in, 2, &indices);
    Tensor delta(out.shape());
    delta(0, 0, 0) = 10.0f;
    const Tensor grad = ops::maxPoolBackward(delta, indices, in.shape());
    EXPECT_FLOAT_EQ(grad(0, 0, 1), 10.0f);
    EXPECT_FLOAT_EQ(grad(0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(grad(0, 1, 1), 0.0f);
}

TEST(AvgPool, ComputesWindowMeans)
{
    Tensor in({1, 2, 2});
    in(0, 0, 0) = 1.0f;
    in(0, 0, 1) = 2.0f;
    in(0, 1, 0) = 3.0f;
    in(0, 1, 1) = 6.0f;
    const Tensor out = ops::avgPool(in, 2);
    EXPECT_FLOAT_EQ(out(0, 0, 0), 3.0f);
}

TEST(AvgPool, BackwardSpreadsUniformly)
{
    Tensor delta({1, 1, 1});
    delta(0, 0, 0) = 8.0f;
    const Tensor grad = ops::avgPoolBackward(delta, 2, {1, 2, 2});
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(grad.at(i), 2.0f);
}

TEST(MatVec, ComputesProduct)
{
    Tensor w({2, 3});
    // [[1 2 3], [4 5 6]]
    for (int64_t i = 0; i < 6; ++i)
        w.at(i) = static_cast<float>(i + 1);
    Tensor x({3});
    x(0) = 1.0f;
    x(1) = 0.0f;
    x(2) = -1.0f;
    const Tensor y = ops::matVec(w, x);
    EXPECT_FLOAT_EQ(y(0), -2.0f);
    EXPECT_FLOAT_EQ(y(1), -2.0f);
}

TEST(MatVecT, IsTransposedProduct)
{
    Rng rng(8);
    const Tensor w = Tensor::randn({4, 3}, rng);
    const Tensor y = Tensor::randn({4}, rng);
    const Tensor x = ops::matVecT(w, y);
    for (int64_t j = 0; j < 3; ++j) {
        double expect = 0.0;
        for (int64_t i = 0; i < 4; ++i)
            expect += w(i, j) * y(i);
        EXPECT_NEAR(x(j), expect, 1e-5);
    }
}

TEST(Outer, ShapeAndValues)
{
    Tensor d({2});
    d(0) = 2.0f;
    d(1) = 3.0f;
    Tensor delta({3});
    delta(0) = 1.0f;
    delta(1) = -1.0f;
    delta(2) = 0.5f;
    const Tensor g = ops::outer(d, delta);
    EXPECT_EQ(g.shape(), (Shape{3, 2}));
    EXPECT_FLOAT_EQ(g(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(g(1, 1), -3.0f);
    EXPECT_FLOAT_EQ(g(2, 0), 1.0f);
}

TEST(Im2col, MatchesFig4Ordering)
{
    // The paper's Fig. 4 streams one unrolled window per cycle; each
    // im2col row must reproduce conv2d when dotted with an unrolled
    // kernel.
    Rng rng(6);
    const Tensor in = Tensor::randn({2, 4, 4}, rng);
    const Tensor k = Tensor::randn({1, 2, 3, 3}, rng);
    const Tensor out = ops::conv2d(in, k, Tensor());
    const Tensor cols = ops::im2col(in, 3, 3);
    ASSERT_EQ(cols.shape(), (Shape{4, 18}));
    for (int64_t w = 0; w < 4; ++w) {
        double dot = 0.0;
        int64_t col = 0;
        for (int64_t c = 0; c < 2; ++c)
            for (int64_t ky = 0; ky < 3; ++ky)
                for (int64_t kx = 0; kx < 3; ++kx)
                    dot += cols(w, col++) * k(0, c, ky, kx);
        EXPECT_NEAR(out.at(w), dot, 1e-4);
    }
}

TEST(Im2col, WindowCountMatchesPaperExample)
{
    // Paper Fig. 4: a 66x66x128 input with 3x3 kernels yields
    // 64*64 = 4096 windows of length 3*3*128 = 1152.  We shrink the
    // spatial extent but keep the structure.
    Tensor in({128, 8, 8});
    const Tensor cols = ops::im2col(in, 3, 3);
    EXPECT_EQ(cols.dim(0), 36);
    EXPECT_EQ(cols.dim(1), 1152);
}

/**
 * Property sweep: for a grid of (channels, kernel, stride, pad),
 * conv2d must equal the im2col unrolling dotted with the unrolled
 * kernels — the identity that makes the paper's Fig. 4 mapping
 * compute the right thing.
 */
struct ConvGeom
{
    int64_t channels, kernel, stride, pad;
};

class ConvSweep : public ::testing::TestWithParam<ConvGeom>
{
};

TEST_P(ConvSweep, Conv2dMatchesIm2colProduct)
{
    const ConvGeom geom = GetParam();
    Rng rng(static_cast<uint64_t>(geom.channels * 1000 +
                                  geom.kernel * 100 +
                                  geom.stride * 10 + geom.pad));
    const int64_t size = 9;
    const Tensor in = Tensor::randn({geom.channels, size, size}, rng);
    const Tensor k = Tensor::randn(
        {3, geom.channels, geom.kernel, geom.kernel}, rng);
    const Tensor out =
        ops::conv2d(in, k, Tensor(), geom.stride, geom.pad);
    const Tensor cols =
        ops::im2col(in, geom.kernel, geom.kernel, geom.stride, geom.pad);

    ASSERT_EQ(cols.dim(0), out.dim(1) * out.dim(2));
    const int64_t len = geom.channels * geom.kernel * geom.kernel;
    ASSERT_EQ(cols.dim(1), len);

    for (int64_t oc = 0; oc < 3; ++oc) {
        for (int64_t w = 0; w < cols.dim(0); ++w) {
            double dot = 0.0;
            for (int64_t j = 0; j < len; ++j)
                dot += cols(w, j) * k.at(oc * len + j);
            EXPECT_NEAR(out.at(oc * cols.dim(0) + w), dot, 1e-3)
                << "oc=" << oc << " w=" << w;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvSweep,
    ::testing::Values(ConvGeom{1, 1, 1, 0}, ConvGeom{1, 3, 1, 0},
                      ConvGeom{2, 3, 1, 1}, ConvGeom{3, 3, 2, 0},
                      ConvGeom{2, 5, 1, 2}, ConvGeom{4, 2, 2, 1},
                      ConvGeom{1, 9, 1, 0}, ConvGeom{2, 3, 3, 1}));

/** Backward/forward consistency sweep for stride-1 convolutions. */
class ConvBackwardSweep
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>>
{
};

TEST_P(ConvBackwardSweep, EnergyConservationOfLinearMap)
{
    // <conv(x), δ> == <x, conv_backward_input(δ)>: the adjoint
    // identity that the rot180 construction (paper Fig. 11) must
    // satisfy exactly.
    const auto [kernel, pad] = GetParam();
    Rng rng(static_cast<uint64_t>(kernel * 10 + pad));
    const Tensor x = Tensor::randn({2, 7, 7}, rng);
    const Tensor k = Tensor::randn({3, 2, kernel, kernel}, rng);
    const Tensor y = ops::conv2d(x, k, Tensor(), 1, pad);
    const Tensor delta = Tensor::randn(y.shape(), rng);
    const Tensor grad = ops::conv2dBackwardInput(delta, k, pad);

    double lhs = 0.0, rhs = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i)
        lhs += y.at(i) * delta.at(i);
    for (int64_t i = 0; i < x.numel(); ++i)
        rhs += x.at(i) * grad.at(i);
    EXPECT_NEAR(lhs, rhs, 1e-2 * (1.0 + std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ConvBackwardSweep,
    ::testing::Values(std::make_pair<int64_t, int64_t>(1, 0),
                      std::make_pair<int64_t, int64_t>(3, 0),
                      std::make_pair<int64_t, int64_t>(3, 1),
                      std::make_pair<int64_t, int64_t>(5, 2),
                      std::make_pair<int64_t, int64_t>(7, 3)));

TEST(OpsDeath, ShapeMismatchesPanic)
{
    Tensor in({1, 3, 3});
    Tensor k({1, 2, 2, 2}); // channel mismatch
    EXPECT_DEATH(ops::conv2d(in, k, Tensor()), "channel mismatch");
    Tensor w({2, 3});
    Tensor x({2});
    EXPECT_DEATH(ops::matVec(w, x), "inner-dim mismatch");
}

} // namespace
} // namespace pipelayer
