/**
 * @file
 * Tests of the parallel execution engine and its determinism
 * contract: every hot loop must produce bit-identical results at
 * PL_THREADS=1 (serial fallback) and PL_THREADS=N, because workers
 * own disjoint output ranges and keep the serial per-element
 * floating-point evaluation order.
 *
 * Also holds the CircularBuffer regression tests for the
 * incremental live-count rewrite (the O(capacity) scan per write made
 * the scheduler quadratic in buffer depth).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "arch/buffers.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/pipelined_trainer.hh"
#include "nn/layers.hh"
#include "nn/network.hh"
#include "reram/crossbar.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace pipelayer {
namespace {

/** Restores the ambient thread count when a test scope exits. */
class ThreadCountGuard
{
  public:
    explicit ThreadCountGuard(int64_t n) : saved_(threadCount())
    {
        setThreadCount(n);
    }
    ~ThreadCountGuard() { setThreadCount(saved_); }

  private:
    int64_t saved_;
};

/** Bitwise tensor equality (EXPECT_EQ on floats would accept -0.0). */
bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    if (a.shape() != b.shape())
        return false;
    return std::memcmp(a.data(), b.data(),
                       sizeof(float) *
                           static_cast<size_t>(a.numel())) == 0;
}

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    ThreadCountGuard guard(4);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(0, 1000, 7, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            ++hits[static_cast<size_t>(i)];
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges)
{
    ThreadCountGuard guard(4);
    int calls = 0;
    parallel_for(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    // A range below 2*grain runs inline in one piece.
    parallel_for(0, 3, 2, [&](int64_t b, int64_t e) {
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 3);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallsRunInline)
{
    ThreadCountGuard guard(4);
    std::atomic<int> inner_regions{0};
    parallel_for(0, 8, 1, [&](int64_t b, int64_t e) {
        EXPECT_TRUE(inParallelRegion());
        for (int64_t i = b; i < e; ++i) {
            parallel_for(0, 100, 1, [&](int64_t ib, int64_t ie) {
                // Nested region must arrive as one inline chunk.
                EXPECT_EQ(ib, 0);
                EXPECT_EQ(ie, 100);
                ++inner_regions;
            });
        }
    });
    EXPECT_FALSE(inParallelRegion());
    EXPECT_EQ(inner_regions.load(), 8);
}

TEST(ParallelFor, SerialFallbackRunsCallerOnly)
{
    ThreadCountGuard guard(1);
    int calls = 0;
    parallel_for(0, 10000, 1, [&](int64_t b, int64_t e) {
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 10000);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelDeterminism, Conv2dForwardAndBackward)
{
    Rng rng(21);
    const Tensor in = Tensor::randn({8, 14, 14}, rng);
    const Tensor k = Tensor::randn({16, 8, 3, 3}, rng);
    const Tensor b = Tensor::randn({16}, rng);
    const Tensor delta = Tensor::randn({16, 14, 14}, rng);

    Tensor fwd_serial, bwd_serial;
    {
        ThreadCountGuard guard(1);
        fwd_serial = ops::conv2d(in, k, b, 1, 1);
        bwd_serial = ops::conv2dBackwardKernel(in, delta, 3, 3, 1);
    }
    for (int64_t threads : {2, 4, 7}) {
        ThreadCountGuard guard(threads);
        EXPECT_TRUE(
            bitIdentical(fwd_serial, ops::conv2d(in, k, b, 1, 1)))
            << "conv2d diverged at " << threads << " threads";
        EXPECT_TRUE(bitIdentical(
            bwd_serial, ops::conv2dBackwardKernel(in, delta, 3, 3, 1)))
            << "conv2dBackwardKernel diverged at " << threads
            << " threads";
    }
}

TEST(ParallelDeterminism, MatVecFamily)
{
    Rng rng(22);
    const Tensor w = Tensor::randn({300, 200}, rng);
    const Tensor x = Tensor::randn({200}, rng);
    const Tensor y = Tensor::randn({300}, rng);

    Tensor mv_serial, mvt_serial, outer_serial;
    {
        ThreadCountGuard guard(1);
        mv_serial = ops::matVec(w, x);
        mvt_serial = ops::matVecT(w, y);
        outer_serial = ops::outer(x, y);
    }
    for (int64_t threads : {2, 4}) {
        ThreadCountGuard guard(threads);
        EXPECT_TRUE(bitIdentical(mv_serial, ops::matVec(w, x)));
        EXPECT_TRUE(bitIdentical(mvt_serial, ops::matVecT(w, y)));
        EXPECT_TRUE(bitIdentical(outer_serial, ops::outer(x, y)));
    }
}

TEST(ParallelDeterminism, CrossbarMatVec)
{
    const reram::DeviceParams params;
    auto program = [&](reram::CrossbarArray &array, Rng &rng) {
        for (int64_t r = 0; r < params.array_rows; ++r)
            for (int64_t c = 0; c < params.array_cols; ++c)
                array.programCell(
                    r, c, static_cast<int64_t>(rng.uniformInt(16)));
    };
    std::vector<int64_t> codes(
        static_cast<size_t>(params.array_rows));
    Rng code_rng(23);
    for (auto &code : codes)
        code = static_cast<int64_t>(code_rng.uniformInt(65536));

    std::vector<int64_t> serial_out;
    {
        ThreadCountGuard guard(1);
        Rng rng(24);
        reram::CrossbarArray array(params);
        program(array, rng);
        serial_out = array.matVecCodes(codes);
    }
    for (int64_t threads : {2, 4}) {
        ThreadCountGuard guard(threads);
        Rng rng(24);
        reram::CrossbarArray array(params);
        program(array, rng);
        EXPECT_EQ(serial_out, array.matVecCodes(codes))
            << "crossbar matVec diverged at " << threads << " threads";
    }
}

TEST(ParallelDeterminism, CrossbarSaturationMatchesSerial)
{
    // Saturation depends on the per-column integrate order; a narrow
    // counter must clip identically at every thread count.
    reram::DeviceParams params;
    params.counter_bits = 8;
    std::vector<int64_t> codes(
        static_cast<size_t>(params.array_rows), 65535);

    auto run = [&](int64_t threads) {
        ThreadCountGuard guard(threads);
        reram::CrossbarArray array(params);
        for (int64_t r = 0; r < params.array_rows; ++r)
            for (int64_t c = 0; c < params.array_cols; ++c)
                array.programCell(r, c, 15);
        auto out = array.matVecCodes(codes);
        EXPECT_TRUE(array.lastSaturated());
        return out;
    };
    const auto serial = run(1);
    EXPECT_EQ(serial, run(4));
}

nn::Network
makeCnn(uint64_t seed)
{
    Rng rng(seed);
    nn::Network net("det-cnn", {1, 8, 8});
    net.add(std::make_unique<nn::ConvLayer>(1, 4, 3, 1, 1, rng));
    net.add(std::make_unique<nn::ReluLayer>());
    net.add(std::make_unique<nn::MaxPoolLayer>(2));
    net.add(std::make_unique<nn::ConvLayer>(4, 6, 3, 1, 1, rng));
    net.add(std::make_unique<nn::ReluLayer>());
    net.add(std::make_unique<nn::MaxPoolLayer>(2));
    net.add(std::make_unique<nn::FlattenLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(24, 4, rng));
    return net;
}

TEST(ParallelDeterminism, FullPipelinedTrainBatch)
{
    std::vector<Tensor> inputs;
    std::vector<int64_t> labels;
    Rng rng(25);
    for (int64_t i = 0; i < 12; ++i) {
        Tensor x({1, 8, 8});
        for (int64_t j = 0; j < x.numel(); ++j)
            x.at(j) = static_cast<float>(rng.uniform());
        inputs.push_back(std::move(x));
        labels.push_back(static_cast<int64_t>(rng.uniformInt(4)));
    }

    auto train = [&](int64_t threads, double *loss) {
        ThreadCountGuard guard(threads);
        nn::Network net = makeCnn(26);
        core::PipelinedTrainer trainer(net);
        // Two batches so the second starts from parallel-updated
        // weights — divergence would compound and be caught.
        trainer.trainBatch(inputs, labels, 0.2f);
        *loss = trainer.trainBatch(inputs, labels, 0.2f).mean_loss;
        return net;
    };

    double serial_loss = 0.0, parallel_loss = 0.0;
    nn::Network serial = train(1, &serial_loss);
    nn::Network parallel = train(4, &parallel_loss);

    EXPECT_EQ(serial_loss, parallel_loss);
    ASSERT_EQ(serial.numLayers(), parallel.numLayers());
    for (size_t l = 0; l < serial.numLayers(); ++l) {
        const auto ps = serial.layer(l).parameters();
        const auto pp = parallel.layer(l).parameters();
        ASSERT_EQ(ps.size(), pp.size());
        for (size_t k = 0; k < ps.size(); ++k)
            EXPECT_TRUE(bitIdentical(*ps[k], *pp[k]))
                << "layer " << l << " param " << k
                << " diverged between 1 and 4 threads";
    }
}

/**
 * Reference CircularBuffer live-count bookkeeping: the pre-rewrite
 * O(capacity) scan, replayed alongside the incremental version.
 */
struct ReferenceBuffer
{
    struct Slot
    {
        int64_t tag = -1;
        bool live = false;
    };
    std::vector<Slot> slots;
    int64_t write_idx = 0;
    int64_t violations = 0;
    int64_t peak_live = 0;

    explicit ReferenceBuffer(int64_t entries)
        : slots(static_cast<size_t>(entries))
    {
    }

    int64_t liveScan() const
    {
        int64_t live = 0;
        for (const auto &slot : slots)
            live += slot.live ? 1 : 0;
        return live;
    }

    void write(int64_t tag)
    {
        Slot &slot = slots[static_cast<size_t>(write_idx)];
        if (slot.live)
            ++violations;
        slot.tag = tag;
        slot.live = true;
        write_idx =
            (write_idx + 1) % static_cast<int64_t>(slots.size());
        peak_live = std::max(peak_live, liveScan());
    }

    void read(int64_t tag, bool final_read)
    {
        for (auto &slot : slots) {
            if (slot.live && slot.tag == tag) {
                if (final_read)
                    slot.live = false;
                return;
            }
        }
        ++violations;
    }
};

TEST(CircularBufferRegression, IncrementalCountMatchesScan)
{
    // Random mixed workload, including overwrites of live data and
    // reads of evicted tags, on several capacities.
    for (int64_t capacity : {1, 2, 7, 32}) {
        arch::CircularBuffer buf("regress", capacity);
        ReferenceBuffer ref(capacity);
        Rng rng(static_cast<uint64_t>(27 + capacity));
        int64_t next_tag = 0;
        for (int step = 0; step < 2000; ++step) {
            const double roll = rng.uniform();
            if (roll < 0.5) {
                buf.write(next_tag);
                ref.write(next_tag);
                ++next_tag;
            } else {
                // Read a mix of recent (likely live) and ancient
                // (likely evicted) tags, half of them final reads.
                const int64_t back =
                    static_cast<int64_t>(rng.uniformInt(
                        static_cast<uint64_t>(2 * capacity + 1)));
                const int64_t tag = next_tag - 1 - back;
                if (tag < 0)
                    continue;
                const bool final_read = rng.uniform() < 0.5;
                buf.read(tag, final_read);
                ref.read(tag, final_read);
            }
            ASSERT_EQ(buf.liveCount(), ref.liveScan())
                << "capacity " << capacity << " step " << step;
            ASSERT_EQ(buf.peakLive(), ref.peak_live);
            ASSERT_EQ(buf.violations(), ref.violations);
        }
    }
}

TEST(CircularBufferRegression, OverwriteKeepsLiveCountStable)
{
    arch::CircularBuffer buf("overwrite", 2);
    buf.write(0);
    buf.write(1);
    EXPECT_EQ(buf.liveCount(), 2);
    buf.write(2); // overwrites live tag 0: one violation, still 2 live
    EXPECT_EQ(buf.liveCount(), 2);
    EXPECT_EQ(buf.violations(), 1);
    EXPECT_EQ(buf.peakLive(), 2);
    buf.read(1, true);
    buf.read(2, true);
    EXPECT_EQ(buf.liveCount(), 0);
}

} // namespace
} // namespace pipelayer
