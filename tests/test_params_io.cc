/**
 * @file
 * Tests of the device-parameter file format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "reram/params_io.hh"

namespace pipelayer {
namespace reram {
namespace {

TEST(ParamsIo, EmptyTextGivesPaperDefaults)
{
    const DeviceParams p = parseDeviceParams("");
    const DeviceParams d = DeviceParams::paperDefault();
    EXPECT_EQ(p.array_rows, d.array_rows);
    EXPECT_EQ(p.cell_bits, d.cell_bits);
    EXPECT_DOUBLE_EQ(p.read_latency_per_spike, d.read_latency_per_spike);
}

TEST(ParamsIo, OverridesApply)
{
    const DeviceParams p = parseDeviceParams(
        "cell_bits = 2\n"
        "data_bits = 8\n"
        "write_noise_sigma = 0.05\n");
    EXPECT_EQ(p.cell_bits, 2);
    EXPECT_EQ(p.data_bits, 8);
    EXPECT_EQ(p.sliceGroups(), 4);
    EXPECT_DOUBLE_EQ(p.write_noise_sigma, 0.05);
}

TEST(ParamsIo, CommentsAndBlanksIgnored)
{
    const DeviceParams p = parseDeviceParams(
        "# a calibration experiment\n"
        "\n"
        "array_rows = 256   # bigger subarrays\n");
    EXPECT_EQ(p.array_rows, 256);
}

TEST(ParamsIo, RoundTripThroughText)
{
    DeviceParams original;
    original.periph_energy_factor = 3.5;
    original.array_area_mm2 = 0.001;
    original.stuck_at_fault_rate = 0.01;
    std::ostringstream os;
    writeDeviceParams(original, os);
    const DeviceParams back = parseDeviceParams(os.str());
    EXPECT_DOUBLE_EQ(back.periph_energy_factor, 3.5);
    EXPECT_DOUBLE_EQ(back.array_area_mm2, 0.001);
    EXPECT_DOUBLE_EQ(back.stuck_at_fault_rate, 0.01);
    EXPECT_EQ(back.array_rows, original.array_rows);
}

TEST(ParamsIo, FileRoundTrip)
{
    const std::string path = testing::TempDir() + "pl_params.cfg";
    DeviceParams original;
    original.controller_energy_per_image = 1e-6;
    saveDeviceParams(original, path);
    const DeviceParams back = loadDeviceParams(path);
    EXPECT_DOUBLE_EQ(back.controller_energy_per_image, 1e-6);
    std::remove(path.c_str());
}

TEST(ParamsIoDeath, UnknownKeyIsFatal)
{
    EXPECT_EXIT(parseDeviceParams("spike_color = blue\n"),
                ::testing::ExitedWithCode(1), "unknown key");
}

TEST(ParamsIoDeath, MalformedValueIsFatal)
{
    EXPECT_EXIT(parseDeviceParams("cell_bits = four\n"),
                ::testing::ExitedWithCode(1), "not a number");
}

TEST(ParamsIoDeath, MissingEqualsIsFatal)
{
    EXPECT_EXIT(parseDeviceParams("cell_bits 4\n"),
                ::testing::ExitedWithCode(1), "expected");
}

TEST(ParamsIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(loadDeviceParams("/no/such/params.cfg"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(ParamsIoDeath, IncompatibleBitsAreFatal)
{
    // 16 data bits over 3-bit cells: the slice grouping breaks.
    EXPECT_DEATH(parseDeviceParams("cell_bits = 3\n"), "multiple");
}

} // namespace
} // namespace reram
} // namespace pipelayer
