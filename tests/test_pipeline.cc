/**
 * @file
 * Property tests of the pipeline scheduler against the paper's
 * closed-form latency and buffer-sizing results (Fig. 7, Table 2,
 * §3.3).  The scheduler *executes* the schedule against circular
 * buffers, so these tests prove (not assume) the formulas.
 */

#include <gtest/gtest.h>

#include <memory>

#include "arch/granularity.hh"
#include "arch/mapping.hh"
#include "arch/pipeline.hh"
#include "common/rng.hh"
#include "nn/layers.hh"
#include "workloads/layer_spec.hh"
#include "workloads/model_zoo.hh"

namespace pipelayer {
namespace arch {
namespace {

using workloads::LayerSpec;
using workloads::NetworkSpec;

/** A synthetic all-IP network of a given pipeline depth. */
NetworkSpec
chainOfDepth(int64_t depth)
{
    NetworkSpec spec;
    spec.name = "chain" + std::to_string(depth);
    int64_t width = 32;
    for (int64_t i = 0; i < depth; ++i)
        spec.layers.push_back(LayerSpec::innerProduct(width, width));
    spec.validate();
    return spec;
}

NetworkMapping
mappingFor(const NetworkSpec &spec, bool training, int64_t batch)
{
    static reram::DeviceParams params;
    return NetworkMapping(spec, GranularityConfig::naive(spec), params,
                          training, batch);
}

struct SweepPoint
{
    int64_t depth;
    int64_t images;
    int64_t batch;
};

class ScheduleSweep : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(ScheduleSweep, PipelinedTrainingMatchesClosedForm)
{
    const auto [depth, images, batch] = GetParam();
    const NetworkSpec spec = chainOfDepth(depth);
    const NetworkMapping map = mappingFor(spec, true, batch);

    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = batch;
    config.num_images = images;
    PipelineScheduler scheduler(map, config);
    const ScheduleStats stats = scheduler.run();

    EXPECT_EQ(stats.total_cycles,
              PipelineScheduler::analyticTrainingCycles(depth, images,
                                                        batch, true));
    // When B divides N this is the paper's (N/B)(2L + B + 1).
    if (images % batch == 0) {
        EXPECT_EQ(stats.total_cycles,
                  (images / batch) * (2 * depth + batch + 1));
    }
    EXPECT_EQ(stats.structural_hazards, 0);
    EXPECT_EQ(stats.buffer_violations, 0);
    EXPECT_EQ(stats.forward_ops, images * depth);
    EXPECT_EQ(stats.error_ops, images * depth); // seed + (L-1) backs
    EXPECT_EQ(stats.derivative_ops, images * depth);
    EXPECT_EQ(stats.update_cycles, (images + batch - 1) / batch);
}

TEST_P(ScheduleSweep, NonPipelinedTrainingMatchesClosedForm)
{
    const auto [depth, images, batch] = GetParam();
    const NetworkSpec spec = chainOfDepth(depth);
    const NetworkMapping map = mappingFor(spec, true, batch);

    ScheduleConfig config;
    config.pipelined = false;
    config.training = true;
    config.batch_size = batch;
    config.num_images = images;
    PipelineScheduler scheduler(map, config);
    const ScheduleStats stats = scheduler.run();

    EXPECT_EQ(stats.total_cycles,
              PipelineScheduler::analyticTrainingCycles(depth, images,
                                                        batch, false));
    if (images % batch == 0) {
        // Paper Fig. 7(a): (2L+1)N + N/B.
        EXPECT_EQ(stats.total_cycles,
                  (2 * depth + 1) * images + images / batch);
    }
    EXPECT_EQ(stats.structural_hazards, 0);
    EXPECT_EQ(stats.buffer_violations, 0);
}

TEST_P(ScheduleSweep, PipelinedTestingMatchesClosedForm)
{
    const auto [depth, images, batch] = GetParam();
    (void)batch;
    const NetworkSpec spec = chainOfDepth(depth);
    const NetworkMapping map = mappingFor(spec, false, 1);

    ScheduleConfig config;
    config.pipelined = true;
    config.training = false;
    config.num_images = images;
    PipelineScheduler scheduler(map, config);
    const ScheduleStats stats = scheduler.run();

    EXPECT_EQ(stats.total_cycles, images + depth - 1);
    EXPECT_EQ(stats.structural_hazards, 0);
    EXPECT_EQ(stats.buffer_violations, 0);
    EXPECT_EQ(stats.forward_ops, images * depth);
    EXPECT_EQ(stats.error_ops, 0);
}

TEST_P(ScheduleSweep, NonPipelinedTestingMatchesClosedForm)
{
    const auto [depth, images, batch] = GetParam();
    (void)batch;
    const NetworkSpec spec = chainOfDepth(depth);
    const NetworkMapping map = mappingFor(spec, false, 1);

    ScheduleConfig config;
    config.pipelined = false;
    config.training = false;
    config.num_images = images;
    PipelineScheduler scheduler(map, config);
    const ScheduleStats stats = scheduler.run();
    EXPECT_EQ(stats.total_cycles, images * depth);
    EXPECT_EQ(stats.buffer_violations, 0);
}

INSTANTIATE_TEST_SUITE_P(
    DepthImagesBatch, ScheduleSweep,
    ::testing::Values(SweepPoint{1, 8, 4}, SweepPoint{2, 16, 4},
                      SweepPoint{3, 24, 8}, SweepPoint{3, 30, 8},
                      SweepPoint{4, 64, 16}, SweepPoint{5, 65, 16},
                      SweepPoint{7, 128, 64}, SweepPoint{11, 128, 64},
                      SweepPoint{19, 256, 64}));

TEST(Schedule, PaperFig3Example)
{
    // The 3-layer example of Fig. 3: one input takes 2L + 1 = 7
    // logical cycles (T1..T7), plus one update cycle for a batch of 1.
    const NetworkSpec spec = chainOfDepth(3);
    const NetworkMapping map = mappingFor(spec, true, 1);
    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 1;
    config.num_images = 1;
    PipelineScheduler scheduler(map, config);
    EXPECT_EQ(scheduler.run().total_cycles, 8);
}

TEST(Schedule, BufferSizingIsTight)
{
    // With one entry fewer than the paper's 2(L-l)+1, the pipelined
    // schedule must overwrite live data: the sizing is exact, not
    // conservative.
    const NetworkSpec spec = chainOfDepth(4);
    const NetworkMapping map = mappingFor(spec, true, 16);
    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 16;
    config.num_images = 32;

    PipelineScheduler exact(map, config, /*buffer_slack=*/0);
    EXPECT_EQ(exact.run().buffer_violations, 0);

    PipelineScheduler tight(map, config, /*buffer_slack=*/-1);
    EXPECT_GT(tight.run().buffer_violations, 0);
}

TEST(Schedule, ExtraSlackNeverHurts)
{
    const NetworkSpec spec = chainOfDepth(5);
    const NetworkMapping map = mappingFor(spec, true, 8);
    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 8;
    config.num_images = 24;
    PipelineScheduler slack(map, config, /*buffer_slack=*/3);
    EXPECT_EQ(slack.run().buffer_violations, 0);
}

TEST(Schedule, PipelinedBeatsNonPipelined)
{
    const NetworkSpec spec = chainOfDepth(6);
    const NetworkMapping map = mappingFor(spec, true, 32);
    ScheduleConfig config;
    config.training = true;
    config.batch_size = 32;
    config.num_images = 128;

    config.pipelined = true;
    const int64_t piped = PipelineScheduler(map, config).run().total_cycles;
    config.pipelined = false;
    const int64_t serial =
        PipelineScheduler(map, config).run().total_cycles;
    EXPECT_LT(piped, serial);
    // Speedup approaches (2L+1) for large batches.
    EXPECT_GT(static_cast<double>(serial) / static_cast<double>(piped),
              3.0);
}

TEST(Schedule, UtilizationImprovesWithBatchSize)
{
    // Larger batches amortise the fill/drain overhead (paper §3.3:
    // "the performance gain is due to the fact that B is normally
    // much larger than 1").
    const NetworkSpec spec = chainOfDepth(5);
    const NetworkMapping map_small = mappingFor(spec, true, 4);
    const NetworkMapping map_large = mappingFor(spec, true, 64);

    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.num_images = 128;

    config.batch_size = 4;
    const auto small = PipelineScheduler(map_small, config).run();
    config.batch_size = 64;
    const auto large = PipelineScheduler(map_large, config).run();
    EXPECT_LT(large.total_cycles, small.total_cycles);
    EXPECT_GT(large.stage_utilization, small.stage_utilization);
}

TEST(Schedule, PeakBufferUsageMatchesFormula)
{
    // In steady state, the d_l buffer really holds 2(L-l)+1 live
    // entries — the paper's sizing is achieved, not just respected.
    const int64_t depth = 4;
    const NetworkSpec spec = chainOfDepth(depth);
    const NetworkMapping map = mappingFor(spec, true, 32);
    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 32;
    config.num_images = 64;
    const auto stats = PipelineScheduler(map, config).run();
    ASSERT_EQ(stats.peak_buffer_entries.size(),
              static_cast<size_t>(depth + 1));
    for (int64_t j = 0; j <= depth; ++j) {
        EXPECT_EQ(stats.peak_buffer_entries[static_cast<size_t>(j)],
                  2 * (depth - j) + 1)
            << "buffer d" << j;
    }
}

TEST(Schedule, RealNetworksScheduleCleanly)
{
    for (const auto &spec : workloads::evaluationNetworks()) {
        const NetworkMapping map = mappingFor(spec, true, 16);
        ScheduleConfig config;
        config.pipelined = true;
        config.training = true;
        config.batch_size = 16;
        config.num_images = 32;
        const auto stats = PipelineScheduler(map, config).run();
        EXPECT_EQ(stats.buffer_violations, 0) << spec.name;
        EXPECT_EQ(stats.structural_hazards, 0) << spec.name;
    }
}

} // namespace
} // namespace arch
} // namespace pipelayer
