/**
 * @file
 * Property tests of the pipeline scheduler against the paper's
 * closed-form latency and buffer-sizing results (Fig. 7, Table 2,
 * §3.3).  The scheduler *executes* the schedule against circular
 * buffers, so these tests prove (not assume) the formulas.
 */

#include <gtest/gtest.h>

#include <memory>

#include "arch/granularity.hh"
#include "arch/mapping.hh"
#include "arch/pipeline.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "nn/layers.hh"
#include "sim/arrival.hh"
#include "workloads/layer_spec.hh"
#include "workloads/model_zoo.hh"

namespace pipelayer {
namespace arch {
namespace {

using workloads::LayerSpec;
using workloads::NetworkSpec;

/** A synthetic all-IP network of a given pipeline depth. */
NetworkSpec
chainOfDepth(int64_t depth)
{
    NetworkSpec spec;
    spec.name = "chain" + std::to_string(depth);
    int64_t width = 32;
    for (int64_t i = 0; i < depth; ++i)
        spec.layers.push_back(LayerSpec::innerProduct(width, width));
    spec.validate();
    return spec;
}

NetworkMapping
mappingFor(const NetworkSpec &spec, bool training, int64_t batch)
{
    static reram::DeviceParams params;
    return NetworkMapping(spec, GranularityConfig::naive(spec), params,
                          training, batch);
}

struct SweepPoint
{
    int64_t depth;
    int64_t images;
    int64_t batch;
};

class ScheduleSweep : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(ScheduleSweep, PipelinedTrainingMatchesClosedForm)
{
    const auto [depth, images, batch] = GetParam();
    const NetworkSpec spec = chainOfDepth(depth);
    const NetworkMapping map = mappingFor(spec, true, batch);

    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = batch;
    config.num_images = images;
    PipelineScheduler scheduler(map, config);
    const ScheduleStats stats = scheduler.run();

    EXPECT_EQ(stats.total_cycles,
              PipelineScheduler::analyticTrainingCycles(depth, images,
                                                        batch, true));
    // When B divides N this is the paper's (N/B)(2L + B + 1).
    if (images % batch == 0) {
        EXPECT_EQ(stats.total_cycles,
                  (images / batch) * (2 * depth + batch + 1));
    }
    EXPECT_EQ(stats.structural_hazards, 0);
    EXPECT_EQ(stats.buffer_violations, 0);
    EXPECT_EQ(stats.forward_ops, images * depth);
    EXPECT_EQ(stats.error_ops, images * depth); // seed + (L-1) backs
    EXPECT_EQ(stats.derivative_ops, images * depth);
    EXPECT_EQ(stats.update_cycles, (images + batch - 1) / batch);
}

TEST_P(ScheduleSweep, NonPipelinedTrainingMatchesClosedForm)
{
    const auto [depth, images, batch] = GetParam();
    const NetworkSpec spec = chainOfDepth(depth);
    const NetworkMapping map = mappingFor(spec, true, batch);

    ScheduleConfig config;
    config.pipelined = false;
    config.training = true;
    config.batch_size = batch;
    config.num_images = images;
    PipelineScheduler scheduler(map, config);
    const ScheduleStats stats = scheduler.run();

    EXPECT_EQ(stats.total_cycles,
              PipelineScheduler::analyticTrainingCycles(depth, images,
                                                        batch, false));
    if (images % batch == 0) {
        // Paper Fig. 7(a): (2L+1)N + N/B.
        EXPECT_EQ(stats.total_cycles,
                  (2 * depth + 1) * images + images / batch);
    }
    EXPECT_EQ(stats.structural_hazards, 0);
    EXPECT_EQ(stats.buffer_violations, 0);
}

TEST_P(ScheduleSweep, PipelinedTestingMatchesClosedForm)
{
    const auto [depth, images, batch] = GetParam();
    (void)batch;
    const NetworkSpec spec = chainOfDepth(depth);
    const NetworkMapping map = mappingFor(spec, false, 1);

    ScheduleConfig config;
    config.pipelined = true;
    config.training = false;
    config.num_images = images;
    PipelineScheduler scheduler(map, config);
    const ScheduleStats stats = scheduler.run();

    EXPECT_EQ(stats.total_cycles, images + depth - 1);
    EXPECT_EQ(stats.structural_hazards, 0);
    EXPECT_EQ(stats.buffer_violations, 0);
    EXPECT_EQ(stats.forward_ops, images * depth);
    EXPECT_EQ(stats.error_ops, 0);
}

TEST_P(ScheduleSweep, NonPipelinedTestingMatchesClosedForm)
{
    const auto [depth, images, batch] = GetParam();
    (void)batch;
    const NetworkSpec spec = chainOfDepth(depth);
    const NetworkMapping map = mappingFor(spec, false, 1);

    ScheduleConfig config;
    config.pipelined = false;
    config.training = false;
    config.num_images = images;
    PipelineScheduler scheduler(map, config);
    const ScheduleStats stats = scheduler.run();
    EXPECT_EQ(stats.total_cycles, images * depth);
    EXPECT_EQ(stats.buffer_violations, 0);
}

INSTANTIATE_TEST_SUITE_P(
    DepthImagesBatch, ScheduleSweep,
    ::testing::Values(SweepPoint{1, 8, 4}, SweepPoint{2, 16, 4},
                      SweepPoint{3, 24, 8}, SweepPoint{3, 30, 8},
                      SweepPoint{4, 64, 16}, SweepPoint{5, 65, 16},
                      SweepPoint{7, 128, 64}, SweepPoint{11, 128, 64},
                      SweepPoint{19, 256, 64}));

TEST(Schedule, PaperFig3Example)
{
    // The 3-layer example of Fig. 3: one input takes 2L + 1 = 7
    // logical cycles (T1..T7), plus one update cycle for a batch of 1.
    const NetworkSpec spec = chainOfDepth(3);
    const NetworkMapping map = mappingFor(spec, true, 1);
    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 1;
    config.num_images = 1;
    PipelineScheduler scheduler(map, config);
    EXPECT_EQ(scheduler.run().total_cycles, 8);
}

TEST(Schedule, BufferSizingIsTight)
{
    // With one entry fewer than the paper's 2(L-l)+1, the pipelined
    // schedule must overwrite live data: the sizing is exact, not
    // conservative.
    const NetworkSpec spec = chainOfDepth(4);
    const NetworkMapping map = mappingFor(spec, true, 16);
    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 16;
    config.num_images = 32;

    PipelineScheduler exact(map, config, /*buffer_slack=*/0);
    EXPECT_EQ(exact.run().buffer_violations, 0);

    PipelineScheduler tight(map, config, /*buffer_slack=*/-1);
    EXPECT_GT(tight.run().buffer_violations, 0);
}

TEST(Schedule, ExtraSlackNeverHurts)
{
    const NetworkSpec spec = chainOfDepth(5);
    const NetworkMapping map = mappingFor(spec, true, 8);
    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 8;
    config.num_images = 24;
    PipelineScheduler slack(map, config, /*buffer_slack=*/3);
    EXPECT_EQ(slack.run().buffer_violations, 0);
}

TEST(Schedule, PipelinedBeatsNonPipelined)
{
    const NetworkSpec spec = chainOfDepth(6);
    const NetworkMapping map = mappingFor(spec, true, 32);
    ScheduleConfig config;
    config.training = true;
    config.batch_size = 32;
    config.num_images = 128;

    config.pipelined = true;
    const int64_t piped = PipelineScheduler(map, config).run().total_cycles;
    config.pipelined = false;
    const int64_t serial =
        PipelineScheduler(map, config).run().total_cycles;
    EXPECT_LT(piped, serial);
    // Speedup approaches (2L+1) for large batches.
    EXPECT_GT(static_cast<double>(serial) / static_cast<double>(piped),
              3.0);
}

TEST(Schedule, UtilizationImprovesWithBatchSize)
{
    // Larger batches amortise the fill/drain overhead (paper §3.3:
    // "the performance gain is due to the fact that B is normally
    // much larger than 1").
    const NetworkSpec spec = chainOfDepth(5);
    const NetworkMapping map_small = mappingFor(spec, true, 4);
    const NetworkMapping map_large = mappingFor(spec, true, 64);

    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.num_images = 128;

    config.batch_size = 4;
    const auto small = PipelineScheduler(map_small, config).run();
    config.batch_size = 64;
    const auto large = PipelineScheduler(map_large, config).run();
    EXPECT_LT(large.total_cycles, small.total_cycles);
    EXPECT_GT(large.stage_utilization, small.stage_utilization);
}

TEST(Schedule, PeakBufferUsageMatchesFormula)
{
    // In steady state, the d_l buffer really holds 2(L-l)+1 live
    // entries — the paper's sizing is achieved, not just respected.
    const int64_t depth = 4;
    const NetworkSpec spec = chainOfDepth(depth);
    const NetworkMapping map = mappingFor(spec, true, 32);
    ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 32;
    config.num_images = 64;
    const auto stats = PipelineScheduler(map, config).run();
    ASSERT_EQ(stats.peak_buffer_entries.size(),
              static_cast<size_t>(depth + 1));
    for (int64_t j = 0; j <= depth; ++j) {
        EXPECT_EQ(stats.peak_buffer_entries[static_cast<size_t>(j)],
                  2 * (depth - j) + 1)
            << "buffer d" << j;
    }
}

/** Full field-by-field equality of two ScheduleStats. */
void
expectStatsEqual(const ScheduleStats &a, const ScheduleStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.total_cycles, b.total_cycles) << what;
    EXPECT_EQ(a.forward_ops, b.forward_ops) << what;
    EXPECT_EQ(a.error_ops, b.error_ops) << what;
    EXPECT_EQ(a.derivative_ops, b.derivative_ops) << what;
    EXPECT_EQ(a.update_cycles, b.update_cycles) << what;
    EXPECT_EQ(a.stage_utilization, b.stage_utilization) << what;
    EXPECT_EQ(a.structural_hazards, b.structural_hazards) << what;
    EXPECT_EQ(a.buffer_violations, b.buffer_violations) << what;
    EXPECT_EQ(a.peak_buffer_entries, b.peak_buffer_entries) << what;
    EXPECT_EQ(a.per_stage_ops, b.per_stage_ops) << what;
}

struct EquivalencePoint
{
    int64_t depth;
    int64_t images;
    int64_t batch;
};

class EventCoreSweep : public ::testing::TestWithParam<EquivalencePoint>
{
};

TEST_P(EventCoreSweep, MatchesReferenceAndClosedForms)
{
    // The event-driven run() must agree with the dense reference walk
    // *exactly* — every stat, including violations under tight
    // buffers — and with the Table-2 closed forms, across all four
    // (pipelined x training) modes and partial batches (B does not
    // divide N at e.g. N=7, B=3).
    const auto [depth, images, batch] = GetParam();
    const NetworkSpec spec = chainOfDepth(depth);

    for (const bool training : {true, false}) {
        const NetworkMapping map = mappingFor(spec, training, batch);
        for (const bool pipelined : {true, false}) {
            for (const int64_t slack : {int64_t{0}, int64_t{-1}}) {
                ScheduleConfig config;
                config.pipelined = pipelined;
                config.training = training;
                config.batch_size = batch;
                config.num_images = images;
                const std::string what =
                    "depth=" + std::to_string(depth) +
                    " N=" + std::to_string(images) +
                    " B=" + std::to_string(batch) +
                    " pipelined=" + std::to_string(pipelined) +
                    " training=" + std::to_string(training) +
                    " slack=" + std::to_string(slack);

                PipelineScheduler event(map, config, slack);
                const ScheduleStats from_events = event.run();
                const int64_t event_iters = event.lastRunCycleIters();

                PipelineScheduler dense(map, config, slack);
                const ScheduleStats from_walk = dense.runReference();
                expectStatsEqual(from_events, from_walk, what);

                // The event core never iterates more than the dense
                // horizon walk (and both dispatch every event).
                EXPECT_LE(event_iters, dense.lastRunCycleIters())
                    << what;
                EXPECT_EQ(event.lastRunEvents(),
                          dense.lastRunEvents())
                    << what;

                const int64_t analytic = training
                    ? PipelineScheduler::analyticTrainingCycles(
                          depth, images, batch, pipelined)
                    : PipelineScheduler::analyticTestingCycles(
                          depth, images, pipelined);
                EXPECT_EQ(from_events.total_cycles, analytic) << what;
            }
        }
    }
}

std::vector<EquivalencePoint>
equivalenceSweep()
{
    std::vector<EquivalencePoint> points;
    for (const int64_t depth : {1, 2, 3, 5})
        for (const int64_t images : {0, 1, 7, 64})
            for (const int64_t batch : {1, 3, 64})
                points.push_back({depth, images, batch});
    return points;
}

INSTANTIATE_TEST_SUITE_P(Table2, EventCoreSweep,
                         ::testing::ValuesIn(equivalenceSweep()));

TEST(ScheduleConfigValidate, RejectsNonPositiveBatch)
{
    // batch = min(B, N - image) with B <= 0 never advanced the batch
    // loop: buildSchedule used to hang forever.  The ctor validates
    // first and throws a typed error instead.
    const NetworkSpec spec = chainOfDepth(2);
    const NetworkMapping map = mappingFor(spec, true, 1);
    ScheduleConfig config;
    config.batch_size = 0;
    EXPECT_THROW(config.validate(), ConfigError);
    EXPECT_THROW(PipelineScheduler(map, config), ConfigError);
    config.batch_size = -4;
    EXPECT_THROW(PipelineScheduler(map, config), ConfigError);
}

TEST(ScheduleConfigValidate, RejectsNegativeImages)
{
    const NetworkSpec spec = chainOfDepth(2);
    const NetworkMapping map = mappingFor(spec, true, 1);
    ScheduleConfig config;
    config.num_images = -1;
    EXPECT_THROW(config.validate(), ConfigError);
    EXPECT_THROW(PipelineScheduler(map, config), ConfigError);
}

TEST(ScheduleConfigValidate, AcceptsEmptySchedule)
{
    ScheduleConfig config;
    config.num_images = 0;
    EXPECT_NO_THROW(config.validate());
}

TEST(ScheduleConfigValidate, RejectsBadArrivalCycles)
{
    ScheduleConfig config;
    config.pipelined = true;
    config.training = false;
    config.num_images = 3;

    // One arrival per image, non-negative and non-decreasing.
    config.arrival_cycles = {0, 4};
    EXPECT_THROW(config.validate(), ConfigError);
    config.arrival_cycles = {-1, 4, 8};
    EXPECT_THROW(config.validate(), ConfigError);
    config.arrival_cycles = {0, 8, 4};
    EXPECT_THROW(config.validate(), ConfigError);

    // Same-cycle arrivals are legal: measured overload, not an error.
    config.arrival_cycles = {0, 4, 4};
    EXPECT_NO_THROW(config.validate());

    // Arrival traces are the serving shape: pipelined testing only.
    config.arrival_cycles = {0, 4, 8};
    EXPECT_NO_THROW(config.validate());
    config.training = true;
    config.batch_size = 1;
    EXPECT_THROW(config.validate(), ConfigError);
    config.training = false;
    config.pipelined = false;
    EXPECT_THROW(config.validate(), ConfigError);
}

TEST(Schedule, ServingArrivalsMatchReferenceWalk)
{
    // A fixed arrival trace stretches the pipelined testing schedule
    // without changing any per-image op; the event core and the
    // dense reference walk must still agree exactly, and the span
    // generalises N + L - 1 to (N - 1) * interval + L.
    const int64_t depth = 3;
    const NetworkSpec spec = chainOfDepth(depth);
    const NetworkMapping map = mappingFor(spec, false, 1);
    for (const int64_t interval : {int64_t{1}, int64_t{5}}) {
        ScheduleConfig config;
        config.pipelined = true;
        config.training = false;
        config.num_images = 40;
        config.arrival_cycles =
            sim::ArrivalTrace::fixed(40, interval).cycles();

        PipelineScheduler event(map, config);
        const ScheduleStats from_events = event.run();
        PipelineScheduler dense(map, config);
        const ScheduleStats from_walk = dense.runReference();
        const std::string what =
            "interval=" + std::to_string(interval);
        expectStatsEqual(from_events, from_walk, what);
        EXPECT_EQ(from_events.total_cycles,
                  (40 - 1) * interval + depth)
            << what;
        EXPECT_LE(event.lastRunCycleIters(),
                  dense.lastRunCycleIters())
            << what;
        EXPECT_EQ(event.lastRunEvents(), dense.lastRunEvents())
            << what;
    }
}

TEST(AnalyticForms, ZeroImagesIsZeroCycles)
{
    // N + L - 1 would give depth - 1 cycles for an empty testing
    // schedule; both closed forms special-case N = 0.
    for (const int64_t depth : {1, 3, 5}) {
        for (const bool pipelined : {true, false}) {
            EXPECT_EQ(PipelineScheduler::analyticTestingCycles(
                          depth, 0, pipelined),
                      0);
            EXPECT_EQ(PipelineScheduler::analyticTrainingCycles(
                          depth, 0, 8, pipelined),
                      0);
        }
    }
}

TEST(AnalyticForms, RejectBadArguments)
{
    // The closed form used to divide by zero via ceilDiv(n, 0).
    EXPECT_THROW(PipelineScheduler::analyticTrainingCycles(3, 8, 0, true),
                 ConfigError);
    EXPECT_THROW(
        PipelineScheduler::analyticTrainingCycles(3, 8, -1, false),
        ConfigError);
    EXPECT_THROW(PipelineScheduler::analyticTrainingCycles(3, -1, 8, true),
                 ConfigError);
    EXPECT_THROW(PipelineScheduler::analyticTestingCycles(3, -1, true),
                 ConfigError);
}

TEST(Schedule, EmptyScheduleRunsToZeroCycles)
{
    // N = 0 is a legal (if degenerate) schedule: no ops, no cycles,
    // zero utilization — and no division-by-zero NaN.
    const int64_t depth = 3;
    const NetworkSpec spec = chainOfDepth(depth);
    for (const bool training : {true, false}) {
        const NetworkMapping map = mappingFor(spec, training, 1);
        for (const bool pipelined : {true, false}) {
            ScheduleConfig config;
            config.pipelined = pipelined;
            config.training = training;
            config.num_images = 0;
            PipelineScheduler scheduler(map, config);
            const ScheduleStats stats = scheduler.run();
            EXPECT_EQ(stats.total_cycles, 0);
            EXPECT_EQ(stats.forward_ops, 0);
            EXPECT_EQ(stats.error_ops, 0);
            EXPECT_EQ(stats.derivative_ops, 0);
            EXPECT_EQ(stats.update_cycles, 0);
            EXPECT_EQ(stats.stage_utilization, 0.0);
            EXPECT_EQ(stats.structural_hazards, 0);
            EXPECT_EQ(stats.buffer_violations, 0);
            ASSERT_EQ(stats.peak_buffer_entries.size(),
                      static_cast<size_t>(depth + 1));
            for (const int64_t peak : stats.peak_buffer_entries)
                EXPECT_EQ(peak, 0);
            EXPECT_EQ(scheduler.lastRunCycleIters(), 0);
            EXPECT_EQ(scheduler.lastRunEvents(), 0);
        }
    }
}

TEST(Schedule, EventCoreSkipsIdleCycles)
{
    // A non-pipelined testing schedule is mostly idle between images;
    // the event core visits only the busy cycles while the reference
    // walks the whole horizon.
    const NetworkSpec spec = chainOfDepth(3);
    const NetworkMapping map = mappingFor(spec, false, 1);
    ScheduleConfig config;
    config.pipelined = true;
    config.training = false;
    config.num_images = 1000;
    PipelineScheduler scheduler(map, config);
    const ScheduleStats stats = scheduler.run();
    EXPECT_EQ(stats.total_cycles, 1000 + 3 - 1);
    // Busy cycles only: images enter at t0 = i (cycle i), compute in
    // cycles 1..N+L-1; cycle 0 carries only image 0's input write.
    EXPECT_EQ(scheduler.lastRunCycleIters(), 1000 + 3);
    // input writes + L forwards per image.
    EXPECT_EQ(scheduler.lastRunEvents(), 1000 * (3 + 1));

    // Serving arrivals leave real gaps: with interval 16 each image
    // touches only 4 cycles (input write + 3 forwards) out of every
    // 16, so the busy-cycle count stays 4N while the horizon — and
    // the dense walk — grows to ~16N.
    config.arrival_cycles = sim::ArrivalTrace::fixed(1000, 16).cycles();
    PipelineScheduler serving(map, config);
    const ScheduleStats serving_stats = serving.run();
    EXPECT_EQ(serving_stats.total_cycles, (1000 - 1) * 16 + 3);
    EXPECT_EQ(serving.lastRunCycleIters(), 1000 * 4);
    EXPECT_EQ(serving.lastRunEvents(), 1000 * 4);

    PipelineScheduler reference(map, config);
    const ScheduleStats walk_stats = reference.runReference();
    EXPECT_EQ(walk_stats.total_cycles, serving_stats.total_cycles);
    EXPECT_GE(reference.lastRunCycleIters(), (1000 - 1) * 16);
}

TEST(Schedule, RealNetworksScheduleCleanly)
{
    for (const auto &spec : workloads::evaluationNetworks()) {
        const NetworkMapping map = mappingFor(spec, true, 16);
        ScheduleConfig config;
        config.pipelined = true;
        config.training = true;
        config.batch_size = 16;
        config.num_images = 32;
        const auto stats = PipelineScheduler(map, config).run();
        EXPECT_EQ(stats.buffer_violations, 0) << spec.name;
        EXPECT_EQ(stats.structural_hazards, 0) << spec.name;
    }
}

} // namespace
} // namespace arch
} // namespace pipelayer
