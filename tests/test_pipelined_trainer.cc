/**
 * @file
 * Semantic tests of the pipelined training executor: the Fig. 6
 * schedule, executed with real tensors through capacity-constrained
 * buffers, must compute exactly what sequential batch training
 * computes.  This is the functional proof of the paper's central
 * claim that the inter-layer pipeline with 2(L-l)+1 buffers preserves
 * the training semantics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hh"
#include "core/pipelined_trainer.hh"
#include "nn/layers.hh"
#include "nn/trainer.hh"
#include "workloads/model_zoo.hh"
#include "workloads/synthetic_data.hh"

namespace pipelayer {
namespace core {
namespace {

nn::Network
cnn(uint64_t seed)
{
    Rng rng(seed);
    nn::Network net("pipe-cnn", {1, 8, 8});
    net.add(std::make_unique<nn::ConvLayer>(1, 4, 3, 1, 1, rng));
    net.add(std::make_unique<nn::ReluLayer>());
    net.add(std::make_unique<nn::MaxPoolLayer>(2));
    net.add(std::make_unique<nn::ConvLayer>(4, 6, 3, 1, 1, rng));
    net.add(std::make_unique<nn::ReluLayer>());
    net.add(std::make_unique<nn::MaxPoolLayer>(2));
    net.add(std::make_unique<nn::FlattenLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(24, 4, rng));
    return net;
}

nn::Network
mlp(uint64_t seed)
{
    Rng rng(seed);
    nn::Network net("pipe-mlp", {1, 8, 8});
    net.add(std::make_unique<nn::FlattenLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(64, 24, rng));
    net.add(std::make_unique<nn::SigmoidLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(24, 4, rng));
    return net;
}

std::pair<std::vector<Tensor>, std::vector<int64_t>>
makeBatch(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Tensor> inputs;
    std::vector<int64_t> labels;
    for (int64_t i = 0; i < n; ++i) {
        Tensor x({1, 8, 8});
        for (int64_t j = 0; j < x.numel(); ++j)
            x.at(j) = static_cast<float>(rng.uniform());
        inputs.push_back(std::move(x));
        labels.push_back(static_cast<int64_t>(rng.uniformInt(4)));
    }
    return {std::move(inputs), std::move(labels)};
}

/** Max |a - b| over all parameters of two identically-shaped nets. */
double
maxParamDiff(nn::Network &a, nn::Network &b)
{
    double worst = 0.0;
    for (size_t l = 0; l < a.numLayers(); ++l) {
        const auto pa = a.layer(l).parameters();
        const auto pb = b.layer(l).parameters();
        for (size_t k = 0; k < pa.size(); ++k)
            for (int64_t i = 0; i < pa[k]->numel(); ++i)
                worst = std::max(
                    worst, (double)std::fabs(pa[k]->at(i) -
                                             pb[k]->at(i)));
    }
    return worst;
}

TEST(PipelinedTrainer, DepthCountsArrayStages)
{
    nn::Network c = cnn(1);
    nn::Network m = mlp(2);
    EXPECT_EQ(PipelinedTrainer(c).depth(), 3);
    EXPECT_EQ(PipelinedTrainer(m).depth(), 2);
}

TEST(PipelinedTrainer, CycleCountMatchesFig7b)
{
    nn::Network net = cnn(3);
    PipelinedTrainer trainer(net);
    auto [inputs, labels] = makeBatch(10, 4);
    const auto result = trainer.trainBatch(inputs, labels, 0.1f);
    // 2L + B + 1 = 6 + 10 + 1.
    EXPECT_EQ(result.logical_cycles, 17);
}

TEST(PipelinedTrainer, CnnMatchesSequentialTraining)
{
    // Same initial weights, same batch: pipelined and sequential
    // training must agree to float-accumulation noise.
    nn::Network piped = cnn(5);
    nn::Network serial = cnn(5);
    auto [inputs, labels] = makeBatch(12, 6);

    PipelinedTrainer trainer(piped);
    const auto result = trainer.trainBatch(inputs, labels, 0.2f);
    serial.trainBatch(inputs, labels, 0.2f);

    EXPECT_LT(maxParamDiff(piped, serial), 1e-4);
    EXPECT_GT(result.mean_loss, 0.0);
}

TEST(PipelinedTrainer, MlpMatchesSequentialTraining)
{
    nn::Network piped = mlp(7);
    nn::Network serial = mlp(7);
    auto [inputs, labels] = makeBatch(16, 8);

    PipelinedTrainer trainer(piped);
    trainer.trainBatch(inputs, labels, 0.3f);
    serial.trainBatch(inputs, labels, 0.3f);
    EXPECT_LT(maxParamDiff(piped, serial), 1e-4);
}

TEST(PipelinedTrainer, LossMatchesSequential)
{
    nn::Network piped = cnn(9);
    nn::Network serial = cnn(9);
    auto [inputs, labels] = makeBatch(8, 10);

    PipelinedTrainer trainer(piped);
    const auto result = trainer.trainBatch(inputs, labels, 0.1f);
    const double serial_loss =
        serial.trainBatch(inputs, labels, 0.1f);
    EXPECT_NEAR(result.mean_loss, serial_loss, 1e-5);
}

TEST(PipelinedTrainer, L2LossVariantAgrees)
{
    nn::Network piped = mlp(11);
    nn::Network serial = mlp(11);
    auto [inputs, labels] = makeBatch(6, 12);

    PipelinedTrainer trainer(piped);
    trainer.trainBatch(inputs, labels, 0.2f, nn::LossKind::L2);

    // Sequential L2 training via the network protocol.
    serial.zeroGrads();
    for (size_t i = 0; i < inputs.size(); ++i) {
        const Tensor out = serial.forward(inputs[i]);
        Tensor target(out.shape());
        target.at(labels[i]) = 1.0f;
        serial.backward(nn::l2Loss(out, target).delta);
    }
    serial.applyUpdate(0.2f, static_cast<int64_t>(inputs.size()));
    EXPECT_LT(maxParamDiff(piped, serial), 1e-4);
}

TEST(PipelinedTrainer, BuffersStayWithinPaperSizing)
{
    // The executor asserts 2(L-l)+1 capacity internally; with a long
    // batch the peak must actually reach the input buffer's 2L+1.
    nn::Network net = cnn(13);
    PipelinedTrainer trainer(net);
    auto [inputs, labels] = makeBatch(20, 14);
    const auto result = trainer.trainBatch(inputs, labels, 0.1f);
    EXPECT_EQ(result.peak_buffer_entries,
              2 * trainer.depth() + 1);
}

TEST(PipelinedTrainer, MultipleBatchesKeepLearning)
{
    workloads::SyntheticConfig data;
    data.classes = 4;
    data.image_size = 8;
    data.train_per_class = 24;
    data.test_per_class = 10;
    data.noise = 0.25f;
    auto task = workloads::makeSyntheticTask(data);

    nn::Network net = cnn(15);
    PipelinedTrainer trainer(net);
    double first_loss = 0.0, last_loss = 0.0;
    for (int epoch = 0; epoch < 6; ++epoch) {
        Rng rng(static_cast<uint64_t>(epoch));
        task.train.shuffle(rng);
        for (size_t s = 0; s + 8 <= task.train.size(); s += 8) {
            std::vector<Tensor> in(task.train.inputs.begin() + s,
                                   task.train.inputs.begin() + s + 8);
            std::vector<int64_t> lb(task.train.labels.begin() + s,
                                    task.train.labels.begin() + s + 8);
            last_loss = trainer.trainBatch(in, lb, 0.15f).mean_loss;
            if (epoch == 0 && s == 0)
                first_loss = last_loss;
        }
    }
    EXPECT_LT(last_loss, first_loss * 0.7);
    EXPECT_GT(net.accuracy(task.test.inputs, task.test.labels), 0.7);
}

TEST(PipelinedTrainerDeath, StridedConvRejected)
{
    Rng rng(16);
    nn::Network net("strided", {3, 9, 9});
    net.add(std::make_unique<nn::ConvLayer>(3, 4, 3, 2, 0, rng));
    EXPECT_DEATH(PipelinedTrainer trainer(net), "stride");
}

} // namespace
} // namespace core
} // namespace pipelayer
