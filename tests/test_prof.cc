/**
 * @file
 * Tests of the host-side profiler (common/prof.hh): histogram
 * binning, scope aggregation, the on/off gate, thread-pool
 * utilization, and the determinism contract — site call counts are a
 * function of the executed workload only, identical at any
 * PL_THREADS setting (PR: host-side profiler + benchmark regression
 * harness).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/parallel.hh"
#include "common/prof.hh"
#include "common/rng.hh"
#include "core/pipelined_trainer.hh"
#include "nn/layers.hh"
#include "reram/crossbar.hh"
#include "sim/simulator.hh"
#include "tensor/ops.hh"
#include "workloads/layer_spec.hh"

namespace pipelayer {
namespace {

// ---------------------------------------------------------------------
// Histogram binning
// ---------------------------------------------------------------------

TEST(ProfBucket, ZeroDurationGetsBucketZero)
{
    EXPECT_EQ(prof::bucketFor(0), 0);
}

TEST(ProfBucket, ExactPowersOfTwoStartNewBuckets)
{
    // Bucket b covers [2^(b-1), 2^b): a power of two is the first
    // duration of its bucket, and one less is the last of the
    // previous one.
    EXPECT_EQ(prof::bucketFor(1), 1);
    EXPECT_EQ(prof::bucketFor(2), 2);
    EXPECT_EQ(prof::bucketFor(3), 2);
    EXPECT_EQ(prof::bucketFor(4), 3);
    EXPECT_EQ(prof::bucketFor(7), 3);
    EXPECT_EQ(prof::bucketFor(8), 4);
    for (int k = 1; k < 37; ++k) {
        EXPECT_EQ(prof::bucketFor(uint64_t{1} << k), k + 1) << k;
        EXPECT_EQ(prof::bucketFor((uint64_t{1} << k) - 1), k) << k;
    }
}

TEST(ProfBucket, HugeDurationsLandInOverflowBucket)
{
    const int last = prof::kHistBuckets - 1;
    EXPECT_EQ(prof::bucketFor((uint64_t{1} << 38) - 1), last - 1);
    EXPECT_EQ(prof::bucketFor(uint64_t{1} << 38), last);
    EXPECT_EQ(prof::bucketFor(uint64_t{1} << 50), last);
    EXPECT_EQ(prof::bucketFor(UINT64_MAX), last);
}

// ---------------------------------------------------------------------
// Scope recording + gating
// ---------------------------------------------------------------------

/** Enables profiling for one test; restores off + clean counters. */
class ProfTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        prof::setEnabled(true);
        prof::reset();
    }

    void TearDown() override
    {
        prof::setEnabled(false);
        prof::reset();
    }
};

void
hitSite(int times)
{
    for (int i = 0; i < times; ++i) {
        PL_PROF_SCOPE("test.prof_site");
    }
}

TEST_F(ProfTest, ScopedTimerAggregatesCallsAndHistogram)
{
    hitSite(100);
    const prof::Report report = prof::snapshot();
    const prof::SiteReport *site = report.find("test.prof_site");
    ASSERT_NE(site, nullptr);
    EXPECT_EQ(site->calls, 100u);
    EXPECT_LE(site->min_ns, site->max_ns);
    EXPECT_GE(site->total_ns, site->max_ns);

    uint64_t hist_total = 0;
    for (uint64_t count : site->hist)
        hist_total += count;
    EXPECT_EQ(hist_total, site->calls);
}

TEST_F(ProfTest, DisabledScopesRecordNothing)
{
    prof::setEnabled(false);
    hitSite(50);
    const prof::Report report = prof::snapshot();
    const prof::SiteReport *site = report.find("test.prof_site");
    // The site stays interned (the static initialiser ran), but no
    // execution was recorded.
    if (site != nullptr) {
        EXPECT_EQ(site->calls, 0u);
    }
}

TEST_F(ProfTest, ResetClearsCountsButKeepsSitesInterned)
{
    hitSite(10);
    prof::reset();
    const prof::Report report = prof::snapshot();
    const prof::SiteReport *site = report.find("test.prof_site");
    ASSERT_NE(site, nullptr);
    EXPECT_EQ(site->calls, 0u);
    EXPECT_EQ(site->total_ns, 0u);
}

TEST_F(ProfTest, ReportJsonMatchesDocumentedSchema)
{
    hitSite(17);
    const json::Value v = prof::snapshot().toJson();
    EXPECT_EQ(v.at("profile_version").asInt(), 1);
    ASSERT_TRUE(v.find("sites"));
    ASSERT_TRUE(v.find("pool"));
    for (const char *key : {"jobs", "chunks", "queue_wait_ns", "workers"})
        EXPECT_TRUE(v.at("pool").find(key)) << key;

    bool found = false;
    const json::Value &sites = v.at("sites");
    for (size_t i = 0; i < sites.size(); ++i) {
        const json::Value &s = sites.at(i);
        if (s.at("name").asString() != "test.prof_site")
            continue;
        found = true;
        EXPECT_EQ(s.at("calls").asInt(), 17);
        // Histograms serialise as sparse [bucket, count] pairs whose
        // counts sum to the call count (tools/json_lint checks the
        // same invariant on emitted files).
        int64_t hist_total = 0;
        const json::Value &hist = s.at("hist");
        for (size_t b = 0; b < hist.size(); ++b) {
            ASSERT_EQ(hist.at(b).size(), 2u);
            hist_total += hist.at(b).at(size_t{1}).asInt();
        }
        EXPECT_EQ(hist_total, 17);
    }
    EXPECT_TRUE(found);

    // The report round-trips through the writer/parser.
    EXPECT_TRUE(json::parse(v.dump(1)) == v);
}

// ---------------------------------------------------------------------
// Thread-pool utilization
// ---------------------------------------------------------------------

TEST_F(ProfTest, PoolUtilizationCoversAllChunks)
{
    const int64_t saved = threadCount();
    setThreadCount(4);
    std::vector<double> out(1 << 12);
    parallel_for(0, static_cast<int64_t>(out.size()), 1,
                 [&](int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i)
                         out[static_cast<size_t>(i)] = 0.5 * i;
                 });
    setThreadCount(saved);

    const prof::Report report = prof::snapshot();
    EXPECT_GE(report.pool.jobs, 1u);
    EXPECT_GE(report.pool.chunks, 1u);
    ASSERT_FALSE(report.pool.workers.empty());
    uint64_t worker_chunks = 0;
    for (const auto &w : report.pool.workers) {
        EXPECT_GE(w.slot, 0);
        EXPECT_LT(w.slot, prof::kMaxPoolSlots);
        worker_chunks += w.chunks;
    }
    EXPECT_EQ(worker_chunks, report.pool.chunks);
}

// ---------------------------------------------------------------------
// Count determinism across thread counts
// ---------------------------------------------------------------------

nn::Network
profMlp(uint64_t seed)
{
    Rng rng(seed);
    nn::Network net("prof-mlp", {1, 8, 8});
    net.add(std::make_unique<nn::FlattenLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(64, 24, rng));
    net.add(std::make_unique<nn::SigmoidLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(24, 4, rng));
    return net;
}

/**
 * One fixed workload touching every instrumented hot path: direct
 * tensor ops, a crossbar matVec with spike coding, a pipelined
 * training batch, and an analytical simulator run.
 */
void
runProfWorkload()
{
    Rng rng(99);
    Tensor input({3, 12, 12}), kernel({4, 3, 3, 3}), bias({4});
    for (int64_t i = 0; i < input.numel(); ++i)
        input.at(i) = static_cast<float>(rng.uniform());
    for (int64_t i = 0; i < kernel.numel(); ++i)
        kernel.at(i) = static_cast<float>(rng.uniform());

    const Tensor fwd = ops::conv2d(input, kernel, bias, 1, 1);
    const Tensor back = ops::conv2dBackwardInput(fwd, kernel, 1);
    (void)back;
    const Tensor grad = ops::conv2dBackwardKernel(input, fwd, 3, 3, 1);
    (void)grad;

    Tensor w({6, 5}), x({5}), y({6});
    for (int64_t i = 0; i < w.numel(); ++i)
        w.at(i) = static_cast<float>(rng.uniform());
    const Tensor mv = ops::matVec(w, x);
    const Tensor mvt = ops::matVecT(w, y);
    const Tensor op = ops::outer(x, y);
    (void)mv;
    (void)mvt;
    (void)op;

    reram::CrossbarArray array{reram::DeviceParams()};
    array.programCell(0, 0, 3);
    array.matVecCodes({1, 2, 3});

    nn::Network net = profMlp(5);
    core::PipelinedTrainer trainer(net);
    std::vector<Tensor> inputs;
    std::vector<int64_t> labels;
    for (int64_t i = 0; i < 6; ++i) {
        Tensor t({1, 8, 8});
        for (int64_t j = 0; j < t.numel(); ++j)
            t.at(j) = static_cast<float>(rng.uniform());
        inputs.push_back(std::move(t));
        labels.push_back(static_cast<int64_t>(rng.uniformInt(4)));
    }
    trainer.trainBatch(inputs, labels, 0.05f);

    workloads::NetworkSpec spec;
    spec.name = "prof-chain";
    for (int i = 0; i < 3; ++i)
        spec.layers.push_back(workloads::LayerSpec::innerProduct(32, 32));
    const sim::Simulator simulator(spec, reram::DeviceParams());
    simulator.run(sim::SimConfig::training(8, 16));
}

/** Per-site call counts of the workload at @p threads threads. */
std::map<std::string, uint64_t>
workloadCounts(int64_t threads)
{
    const int64_t saved = threadCount();
    setThreadCount(threads);
    prof::reset();
    runProfWorkload();
    const prof::Report report = prof::snapshot();
    setThreadCount(saved);

    std::map<std::string, uint64_t> counts;
    for (const auto &site : report.sites)
        counts[site.name] = site.calls;
    return counts;
}

TEST_F(ProfTest, CallCountsAreIdenticalAcrossThreadCounts)
{
    const auto serial = workloadCounts(1);
    const auto parallel = workloadCounts(4);
    EXPECT_EQ(serial, parallel);

    // Every instrumented hot path of the ISSUE appears with a
    // nonzero count — missing instrumentation fails here, not in a
    // code review.
    for (const char *site :
         {"tensor.conv2d_fwd", "tensor.conv2d_bwd_input",
          "tensor.conv2d_bwd_kernel", "tensor.im2col", "tensor.matvec",
          "tensor.matvect", "tensor.outer", "reram.crossbar_matvec",
          "reram.spike_encode", "trainer.cycle",
          "trainer.cycle_compute", "trainer.cycle_commit", "sim.run"}) {
        const auto it = serial.find(site);
        ASSERT_NE(it, serial.end()) << site;
        EXPECT_GT(it->second, 0u) << site;
    }
}

} // namespace
} // namespace pipelayer
