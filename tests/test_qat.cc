/**
 * @file
 * Tests of quantisation-aware training with analog master
 * accumulation (quant/qat.hh) — the Fig. 13 methodology.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.hh"
#include "nn/layers.hh"
#include "quant/qat.hh"
#include "workloads/synthetic_data.hh"

namespace pipelayer {
namespace quant {
namespace {

nn::Network
makeMlp(uint64_t seed)
{
    Rng rng(seed);
    nn::Network net("qat-mlp", {1, 8, 8});
    net.add(std::make_unique<nn::FlattenLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(64, 24, rng));
    net.add(std::make_unique<nn::ReluLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(24, 4, rng));
    return net;
}

workloads::SyntheticTask
makeTask()
{
    workloads::SyntheticConfig config;
    config.classes = 4;
    config.image_size = 8;
    config.train_per_class = 25;
    config.test_per_class = 10;
    config.noise = 0.25f;
    config.seed = 31;
    return workloads::makeSyntheticTask(config);
}

TEST(Qat, FloatModeLearnsTask)
{
    nn::Network net = makeMlp(1);
    auto task = makeTask();
    QatConfig config;
    config.bits = 0;
    config.epochs = 10;
    Rng rng(2);
    const QatResult result =
        trainQuantized(net, task.train, task.test, config, rng);
    EXPECT_GT(result.test_accuracy, 0.8);
}

TEST(Qat, ModerateResolutionMatchesFloat)
{
    auto task = makeTask();
    QatConfig config;
    config.epochs = 10;
    config.bits = 0;
    Rng rng_a(3);
    nn::Network float_net = makeMlp(4);
    const double float_acc =
        trainQuantized(float_net, task.train, task.test, config, rng_a)
            .test_accuracy;

    config.bits = 8;
    Rng rng_b(3);
    nn::Network q_net = makeMlp(4);
    const double q_acc =
        trainQuantized(q_net, task.train, task.test, config, rng_b)
            .test_accuracy;
    EXPECT_GT(q_acc, float_acc - 0.1);
}

TEST(Qat, ExtremeQuantisationDegrades)
{
    // A noisier, 8-class task: 2-bit readable weights (one positive
    // level!) cannot match 8-bit accuracy there.
    workloads::SyntheticConfig data;
    data.classes = 8;
    data.image_size = 8;
    data.train_per_class = 25;
    data.test_per_class = 10;
    data.noise = 0.5f;
    data.seed = 77;
    auto task = workloads::makeSyntheticTask(data);

    auto build = [](uint64_t seed) {
        Rng rng(seed);
        nn::Network net("qat-hard", {1, 8, 8});
        net.add(std::make_unique<nn::FlattenLayer>());
        net.add(std::make_unique<nn::InnerProductLayer>(64, 24, rng));
        net.add(std::make_unique<nn::ReluLayer>());
        net.add(std::make_unique<nn::InnerProductLayer>(24, 8, rng));
        return net;
    };

    QatConfig config;
    config.epochs = 10;

    config.bits = 8;
    Rng rng_a(5);
    nn::Network fine = build(6);
    const QatResult fine_result =
        trainQuantized(fine, task.train, task.test, config, rng_a);

    config.bits = 2;
    Rng rng_b(5);
    nn::Network coarse = build(6);
    const QatResult coarse_result =
        trainQuantized(coarse, task.train, task.test, config, rng_b);

    EXPECT_LE(coarse_result.test_accuracy, fine_result.test_accuracy);
    EXPECT_GT(coarse_result.final_loss, fine_result.final_loss);
}

TEST(Qat, MasterAccumulatesSubLsbUpdates)
{
    // The defining property of the analog-master model: updates far
    // smaller than one readable LSB still make progress because they
    // accumulate on the conductances.  Plain round-to-readable
    // training would be stuck at the initial weights.
    nn::Network net = makeMlp(7);
    auto task = makeTask();
    QatConfig config;
    config.bits = 4;
    config.epochs = 10;
    config.learning_rate = 0.05f; // small steps, well below one LSB
    Rng rng(8);
    const QatResult result =
        trainQuantized(net, task.train, task.test, config, rng);
    // 4 classes, chance = 0.25; the network must have actually moved.
    EXPECT_GT(result.test_accuracy, 0.6);
}

TEST(Qat, DeterministicGivenSeeds)
{
    auto run = [] {
        nn::Network net = makeMlp(9);
        auto task = makeTask();
        QatConfig config;
        config.bits = 4;
        config.epochs = 4;
        Rng rng(10);
        return trainQuantized(net, task.train, task.test, config, rng)
            .test_accuracy;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Qat, NetworkLeftHoldingQuantisedWeights)
{
    nn::Network net = makeMlp(11);
    auto task = makeTask();
    QatConfig config;
    config.bits = 3;
    config.epochs = 2;
    Rng rng(12);
    trainQuantized(net, task.train, task.test, config, rng);

    // Every weight must sit on a 3-bit grid: at most 7 distinct
    // magnitudes (plus zero) per tensor.
    for (size_t l = 0; l < net.numLayers(); ++l) {
        for (Tensor *p : net.layer(l).parameters()) {
            std::vector<float> values;
            for (int64_t i = 0; i < p->numel(); ++i)
                values.push_back(std::fabs(p->at(i)));
            std::sort(values.begin(), values.end());
            values.erase(std::unique(values.begin(), values.end()),
                         values.end());
            EXPECT_LE(values.size(), 4u); // 0 + 3 positive levels
        }
    }
}

} // namespace
} // namespace quant
} // namespace pipelayer
