/**
 * @file
 * Unit and property tests for the quantisation module (paper §5.1).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hh"
#include "nn/layers.hh"
#include "nn/network.hh"
#include "quant/quantize.hh"

namespace pipelayer {
namespace quant {
namespace {

TEST(Quantizer, ZeroBitsIsPassThrough)
{
    Tensor t({3});
    t(0) = 0.123f;
    t(1) = -4.56f;
    t(2) = 7.89f;
    const Tensor q = quantizeTensor(t, 0);
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(q.at(i), t.at(i));
}

TEST(Quantizer, PositiveLevels)
{
    Tensor t({1}, 1.0f);
    EXPECT_EQ(Quantizer::forTensor(t, 4).positiveLevels(), 7);
    EXPECT_EQ(Quantizer::forTensor(t, 8).positiveLevels(), 127);
    EXPECT_EQ(Quantizer::forTensor(t, 16).positiveLevels(), 32767);
}

TEST(Quantizer, ExtremesAreExact)
{
    Tensor t({2});
    t(0) = -2.0f;
    t(1) = 2.0f;
    const Tensor q = quantizeTensor(t, 4);
    EXPECT_FLOAT_EQ(q(0), -2.0f);
    EXPECT_FLOAT_EQ(q(1), 2.0f);
}

TEST(Quantizer, CodesStayInRange)
{
    Rng rng(1);
    const Tensor t = Tensor::randn({1000}, rng);
    for (int bits : {2, 4, 8, 16}) {
        const Quantizer q = Quantizer::forTensor(t, bits);
        for (int64_t i = 0; i < t.numel(); ++i) {
            const int64_t code = q.code(t.at(i));
            EXPECT_LE(std::llabs(code), q.positiveLevels());
        }
    }
}

TEST(Quantizer, Idempotent)
{
    Rng rng(2);
    const Tensor t = Tensor::randn({100}, rng);
    const Tensor once = quantizeTensor(t, 6);
    const Tensor twice = quantizeTensor(once, 6);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_FLOAT_EQ(once.at(i), twice.at(i));
}

TEST(Quantizer, ErrorBoundedByHalfStep)
{
    Rng rng(3);
    const Tensor t = Tensor::randn({500}, rng);
    const Quantizer q = Quantizer::forTensor(t, 8);
    const Tensor quantised = quantizeTensor(t, 8);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_LE(std::fabs(quantised.at(i) - t.at(i)),
                  q.scale * 0.5f + 1e-6f);
}

/** MSE must fall monotonically as resolution rises — the property
 *  behind the Fig. 13 accuracy curve. */
class QuantMseSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantMseSweep, MseShrinksWithMoreBits)
{
    const int bits = GetParam();
    Rng rng(4);
    const Tensor t = Tensor::randn({2000}, rng);
    const double coarse = quantizationMse(t, bits);
    const double fine = quantizationMse(t, bits + 1);
    EXPECT_LT(fine, coarse);
}

INSTANTIATE_TEST_SUITE_P(BitWidths, QuantMseSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(QuantizeNetwork, ChangesWeightsAtLowBitsOnly)
{
    Rng rng(5);
    nn::Network net("q", {4});
    net.add(std::make_unique<nn::InnerProductLayer>(4, 3, rng));
    const Tensor before = *net.layer(0).parameters()[0];

    nn::Network net16("q16", {4});
    Rng rng2(5);
    net16.add(std::make_unique<nn::InnerProductLayer>(4, 3, rng2));

    quantizeNetworkWeights(net, 2);
    quantizeNetworkWeights(net16, 16);

    double coarse_err = 0.0, fine_err = 0.0;
    const Tensor &w2 = *net.layer(0).parameters()[0];
    const Tensor &w16 = *net16.layer(0).parameters()[0];
    for (int64_t i = 0; i < before.numel(); ++i) {
        coarse_err += std::fabs(w2.at(i) - before.at(i));
        fine_err += std::fabs(w16.at(i) - before.at(i));
    }
    EXPECT_GT(coarse_err, fine_err);
    EXPECT_LT(fine_err, 1e-2);
}

TEST(QuantizeNetwork, ZeroBitsLeavesNetworkIntact)
{
    Rng rng(6);
    nn::Network net("q", {4});
    net.add(std::make_unique<nn::InnerProductLayer>(4, 3, rng));
    const Tensor before = *net.layer(0).parameters()[0];
    quantizeNetworkWeights(net, 0);
    const Tensor &after = *net.layer(0).parameters()[0];
    for (int64_t i = 0; i < before.numel(); ++i)
        EXPECT_FLOAT_EQ(after.at(i), before.at(i));
}

TEST(PerChannel, NeverWorseThanPerTensor)
{
    Rng rng(7);
    // A matrix with wildly different row magnitudes: per-tensor
    // scaling wastes range on the small rows.
    Tensor t({4, 50});
    for (int64_t r = 0; r < 4; ++r) {
        const float scale = std::pow(10.0f, static_cast<float>(r));
        for (int64_t c = 0; c < 50; ++c)
            t(r, c) = static_cast<float>(rng.gaussian()) * scale;
    }
    for (int bits : {3, 4, 6, 8}) {
        EXPECT_LE(quantizationMsePerChannel(t, bits),
                  quantizationMse(t, bits) + 1e-12)
            << bits << " bits";
    }
    // And with these spread-out rows it is *strictly* better (the
    // absolute MSE is dominated by the largest row, which quantises
    // identically under both schemes — hence the modest factor).
    EXPECT_LT(quantizationMsePerChannel(t, 4),
              quantizationMse(t, 4) * 0.6);
}

TEST(PerChannel, Rank1FallsBackToPerTensor)
{
    Rng rng(8);
    const Tensor t = Tensor::randn({40}, rng);
    const Tensor a = quantizeTensorPerChannel(t, 4);
    const Tensor b = quantizeTensor(t, 4);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_FLOAT_EQ(a.at(i), b.at(i));
}

TEST(PerChannel, NetworkVariantQuantisesEveryLayer)
{
    Rng rng(9);
    nn::Network net("pc", {8});
    net.add(std::make_unique<nn::InnerProductLayer>(8, 4, rng));
    const Tensor before = *net.layer(0).parameters()[0];
    quantizeNetworkWeightsPerChannel(net, 3);
    const Tensor &after = *net.layer(0).parameters()[0];
    bool changed = false;
    for (int64_t i = 0; i < before.numel(); ++i)
        changed |= after.at(i) != before.at(i);
    EXPECT_TRUE(changed);
}

TEST(Quantizer, AllZeroTensorSurvives)
{
    Tensor t({10});
    const Tensor q = quantizeTensor(t, 4);
    for (int64_t i = 0; i < q.numel(); ++i)
        EXPECT_FLOAT_EQ(q.at(i), 0.0f);
}

} // namespace
} // namespace quant
} // namespace pipelayer
