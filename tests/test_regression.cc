/**
 * @file
 * Regression tests pinning the reproduction's headline results to the
 * paper's bands (see EXPERIMENTS.md).  These protect the calibration:
 * a change to the timing/energy models that silently breaks the
 * Fig. 15/16 shape fails here, not in a manual bench run.
 *
 * Bands are deliberately loose (the goal is shape, not digits); a
 * failure means the *story* changed — e.g. training became faster
 * than testing, or MNIST stopped dominating the energy savings.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bench/bench_util.hh"
#include "workloads/model_zoo.hh"

namespace pipelayer {
namespace bench {
namespace {

const EvalConfig kConfig; // B = 64, N = 256, as in the benches

const std::vector<EvalRow> &
trainRows()
{
    static const std::vector<EvalRow> rows = evaluateAll(true, kConfig);
    return rows;
}

const std::vector<EvalRow> &
testRows()
{
    static const std::vector<EvalRow> rows = evaluateAll(false, kConfig);
    return rows;
}

const EvalRow &
row(const std::vector<EvalRow> &rows, const std::string &name)
{
    for (const auto &r : rows) {
        if (r.network == name)
            return r;
    }
    ADD_FAILURE() << "no row for " << name;
    static EvalRow dummy;
    return dummy;
}

TEST(Regression, TestingSpeedupGmeanInBand)
{
    // Paper: 42.45x.  Band: the same decade, clearly above 10x.
    const double gm = geomeanOf(testRows(), &EvalRow::speedup);
    EXPECT_GT(gm, 15.0);
    EXPECT_LT(gm, 60.0);
}

TEST(Regression, TrainingSpeedupGmeanInBand)
{
    // Paper: ~5.22x.  Band: below testing, above 2x.
    const double gm = geomeanOf(trainRows(), &EvalRow::speedup);
    EXPECT_GT(gm, 2.0);
    EXPECT_LT(gm, 15.0);
}

TEST(Regression, TrainingSpeedupsBelowTestingSpeedups)
{
    // The paper's §6.3 headline observation, network by network.
    for (const auto &train : trainRows()) {
        const EvalRow &test = row(testRows(), train.network);
        EXPECT_LT(train.speedup(), test.speedup()) << train.network;
    }
}

TEST(Regression, PipelinedAlwaysBeatsNonPipelined)
{
    for (const auto &rows : {trainRows(), testRows()}) {
        for (const auto &r : rows) {
            EXPECT_GT(r.speedup(), r.speedupNoPipe())
                << r.network << (r.training ? " train" : " test");
        }
    }
}

TEST(Regression, MnistCBeatsAlexNetInTraining)
{
    // Paper §6.3: "the speedup of Mnist-C is larger than AlexNet in
    // training ... because Mnist-C is a multilayer perceptron".
    EXPECT_GT(row(trainRows(), "Mnist-C").speedup(),
              row(trainRows(), "AlexNet").speedup());
}

TEST(Regression, BestPipelinedSpeedupNearPaper)
{
    // Paper: 46.58x best.  Band: 30-100x.
    double best = 0.0;
    for (const auto &rows : {trainRows(), testRows()})
        for (const auto &r : rows)
            best = std::max(best, r.speedup());
    EXPECT_GT(best, 30.0);
    EXPECT_LT(best, 100.0);
}

TEST(Regression, EnergySavingGmeansInBand)
{
    // Paper: train 6.52x, test 7.88x.  Band: same decade.
    const double train_gm = geomeanOf(trainRows(),
                                      &EvalRow::energySaving);
    const double test_gm = geomeanOf(testRows(),
                                     &EvalRow::energySaving);
    EXPECT_GT(train_gm, 3.0);
    EXPECT_LT(train_gm, 20.0);
    EXPECT_GT(test_gm, 4.0);
    EXPECT_LT(test_gm, 25.0);
}

TEST(Regression, EverySavingAboveOne)
{
    for (const auto &rows : {trainRows(), testRows()}) {
        for (const auto &r : rows) {
            EXPECT_GT(r.energySaving(), 1.0)
                << r.network << (r.training ? " train" : " test");
        }
    }
}

TEST(Regression, MnistDominatesEnergySavings)
{
    // The MNIST nets save far more energy than the VGGs (testing).
    const double mnist = row(testRows(), "Mnist-A").energySaving();
    const double vgg = row(testRows(), "VGG-E").energySaving();
    EXPECT_GT(mnist, 3.0 * vgg);
}

TEST(Regression, BestTestingSavingNearPaper)
{
    // Paper: ~70x best testing saving.  Band: 40-120x.
    double best = 0.0;
    for (const auto &r : testRows())
        best = std::max(best, r.energySaving());
    EXPECT_GT(best, 40.0);
    EXPECT_LT(best, 120.0);
}

TEST(Regression, VggETrainingAreaNearPaper)
{
    // Paper §6.6: 82.6 mm^2.  Band: +/- 15%.
    const double area = row(trainRows(), "VGG-E").pl_area;
    EXPECT_GT(area, 70.0);
    EXPECT_LT(area, 95.0);
}

TEST(Regression, VggTestSpeedupsGrowWithDepth)
{
    const char *const order[] = {"VGG-A", "VGG-B", "VGG-D", "VGG-E"};
    double prev = 0.0;
    for (const char *name : order) {
        const double s = row(testRows(), name).speedup();
        EXPECT_GT(s, prev) << name;
        prev = s;
    }
}

} // namespace
} // namespace bench
} // namespace pipelayer
