/**
 * @file
 * Unit tests for the ReRAM substrate: spike coding, integrate-and-
 * fire, crossbar arrays and bit-sliced array groups.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "reram/array_group.hh"
#include "reram/crossbar.hh"
#include "reram/params.hh"
#include "reram/spike.hh"
#include "tensor/ops.hh"

namespace pipelayer {
namespace reram {
namespace {

TEST(DeviceParams, PaperDefaults)
{
    const DeviceParams p = DeviceParams::paperDefault();
    EXPECT_EQ(p.cell_bits, 4);
    EXPECT_EQ(p.data_bits, 16);
    EXPECT_EQ(p.sliceGroups(), 4);
    EXPECT_EQ(p.maxCellCode(), 15);
    EXPECT_NEAR(p.read_latency_per_spike, 29.31e-9, 1e-12);
    EXPECT_NEAR(p.write_latency_per_spike, 50.88e-9, 1e-12);
    EXPECT_NEAR(p.read_energy_per_spike, 1.08e-12, 1e-15);
    EXPECT_NEAR(p.write_energy_per_spike, 3.91e-9, 1e-12);
    // A 16-bit input needs 16 spike slots per MVM step.
    EXPECT_NEAR(p.mvmLatency(), 16 * 29.31e-9, 1e-12);
}

TEST(SpikeDriver, EncodeDecodeExact)
{
    const SpikeDriver driver(16);
    for (int64_t code : {0L, 1L, 2L, 255L, 32767L, 65535L}) {
        const SpikeTrain train = driver.encode(code);
        EXPECT_EQ(train.value(), code) << "code " << code;
        EXPECT_EQ(train.bits(), 16);
    }
}

TEST(SpikeDriver, LsbFirstOrdering)
{
    const SpikeDriver driver(4);
    const SpikeTrain train = driver.encode(0b0101);
    EXPECT_TRUE(train.slots[0]);  // LSB first (paper §4.2.1)
    EXPECT_FALSE(train.slots[1]);
    EXPECT_TRUE(train.slots[2]);
    EXPECT_FALSE(train.slots[3]);
}

TEST(SpikeDriver, SpikeCountIsPopcount)
{
    const SpikeDriver driver(8);
    EXPECT_EQ(driver.encode(0).spikeCount(), 0);
    EXPECT_EQ(driver.encode(255).spikeCount(), 8);
    EXPECT_EQ(driver.encode(0b10110).spikeCount(), 3);
}

TEST(IntegrateFire, CountsChargeExactly)
{
    IntegrateFire inf(32);
    inf.integrate(5);
    inf.integrate(7);
    EXPECT_EQ(inf.count(), 12);
    EXPECT_FALSE(inf.saturated());
    inf.reset();
    EXPECT_EQ(inf.count(), 0);
}

TEST(IntegrateFire, SaturatesAtCounterWidth)
{
    IntegrateFire inf(4); // max count 15
    inf.integrate(10);
    inf.integrate(10);
    EXPECT_EQ(inf.count(), 15);
    EXPECT_TRUE(inf.saturated());
}

TEST(Crossbar, ProgramAndReadCells)
{
    const DeviceParams p;
    CrossbarArray array(p);
    array.programCell(3, 5, 9);
    EXPECT_EQ(array.cell(3, 5), 9);
    EXPECT_EQ(array.cell(0, 0), 0);
}

TEST(Crossbar, MatVecIsExactIntegerProduct)
{
    const DeviceParams p;
    CrossbarArray array(p);
    // g[0][0] = 3, g[1][0] = 5, g[0][1] = 7.
    array.programCell(0, 0, 3);
    array.programCell(1, 0, 5);
    array.programCell(0, 1, 7);
    const std::vector<int64_t> out = array.matVecCodes({10, 20});
    EXPECT_EQ(out[0], 10 * 3 + 20 * 5);
    EXPECT_EQ(out[1], 10 * 7);
    EXPECT_EQ(out[2], 0);
}

TEST(Crossbar, MatVecFullResolutionInputs)
{
    const DeviceParams p;
    CrossbarArray array(p);
    for (int64_t r = 0; r < p.array_rows; ++r)
        array.programCell(r, 0, 15);
    std::vector<int64_t> codes(static_cast<size_t>(p.array_rows), 65535);
    const std::vector<int64_t> out = array.matVecCodes(codes);
    EXPECT_EQ(out[0], 65535LL * 15 * p.array_rows);
}

TEST(Crossbar, ActivityCountsSpikes)
{
    const DeviceParams p;
    CrossbarArray array(p);
    array.programCell(0, 0, 1);
    (void)array.matVecCodes({0b101});      // 2 input spikes
    (void)array.matVecCodes({0b1});        // 1 input spike
    EXPECT_EQ(array.activity().input_spikes, 3);
    EXPECT_EQ(array.activity().mvm_ops, 2);
    EXPECT_EQ(array.activity().write_pulses, p.cell_bits);
}

TEST(CrossbarDeath, RejectsOverRangeCode)
{
    const DeviceParams p;
    CrossbarArray array(p);
    EXPECT_DEATH(array.programCell(0, 0, 16), "exceeds");
}

// ---------------------------------------------------------------------
// ArrayGroup
// ---------------------------------------------------------------------

TEST(ArrayGroup, ArrayCountMatchesTiling)
{
    const DeviceParams p; // 128x128 arrays, 2 signs x 4 slices
    Rng rng(1);
    // 200 inputs x 150 outputs -> 2x2 tiles.
    const Tensor w = Tensor::randn({150, 200}, rng);
    ArrayGroup group(p, w);
    EXPECT_EQ(group.arrayCount(), 2 * 4 * 2 * 2);
}

TEST(ArrayGroup, Fig5ExampleTiling)
{
    // Paper Fig. 5: a 512x256 matrix decomposes into 8 = 4x2 arrays
    // of 128x128 (per sign and slice group).
    const DeviceParams p;
    Rng rng(2);
    const Tensor w = Tensor::randn({256, 512}, rng); // (out, in)
    ArrayGroup group(p, w);
    EXPECT_EQ(group.arrayCount(), 2 * 4 * 8);
}

TEST(ArrayGroup, ReadWeightsMatchesQuantisedOriginal)
{
    const DeviceParams p;
    Rng rng(3);
    const Tensor w = Tensor::randn({10, 12}, rng);
    ArrayGroup group(p, w);
    const Tensor stored = group.readWeights();
    // 16-bit quantisation: error below one LSB.
    for (int64_t i = 0; i < w.numel(); ++i)
        EXPECT_NEAR(stored.at(i), w.at(i), group.weightScale() * 0.51f);
}

TEST(ArrayGroup, MatVecMatchesFloatWithinQuantisation)
{
    const DeviceParams p;
    Rng rng(4);
    const Tensor w = Tensor::randn({16, 24}, rng);
    ArrayGroup group(p, w);
    Tensor x({24});
    for (int64_t i = 0; i < 24; ++i)
        x(i) = static_cast<float>(rng.uniform()); // non-negative input
    const Tensor expect = ops::matVec(w, x);
    const Tensor got = group.matVec(x);
    for (int64_t i = 0; i < expect.numel(); ++i)
        EXPECT_NEAR(got(i), expect(i), 5e-3 * (1.0 + std::fabs(expect(i))));
}

TEST(ArrayGroup, SignedInputsViaSignSplit)
{
    const DeviceParams p;
    Rng rng(5);
    const Tensor w = Tensor::randn({8, 8}, rng);
    ArrayGroup group(p, w);
    const Tensor x = Tensor::randn({8}, rng); // signed (backward errors)
    const Tensor expect = ops::matVec(w, x);
    const Tensor got = group.matVec(x);
    for (int64_t i = 0; i < expect.numel(); ++i)
        EXPECT_NEAR(got(i), expect(i), 5e-3 * (1.0 + std::fabs(expect(i))));
}

TEST(ArrayGroup, MatVecAcrossTileBoundaries)
{
    const DeviceParams p;
    Rng rng(6);
    const Tensor w = Tensor::randn({130, 260}, rng); // 2x3 tile grid
    ArrayGroup group(p, w);
    Tensor x({260});
    for (int64_t i = 0; i < 260; ++i)
        x(i) = static_cast<float>(rng.uniform());
    const Tensor expect = ops::matVec(w, x);
    const Tensor got = group.matVec(x);
    for (int64_t i = 0; i < expect.numel(); ++i)
        EXPECT_NEAR(got(i), expect(i),
                    2e-2 * (1.0 + std::fabs(expect(i))));
}

TEST(ArrayGroup, UpdateWeightsMovesTowardTarget)
{
    const DeviceParams p;
    Rng rng(7);
    // Keep weights well inside the quantisation range (set by the
    // 2.0 anchor) so no update clamps at the code limits.
    Tensor w = Tensor::randn({6, 6}, rng, 0.0f, 0.3f);
    w(0, 0) = 2.0f;
    ArrayGroup group(p, w);
    // Gradient = +1 everywhere: weights must decrease by lr/B.
    Tensor grad({6, 6}, 1.0f);
    const Tensor before = group.readWeights();
    group.updateWeights(grad, /*lr=*/0.5f, /*batch_size=*/2);
    const Tensor after = group.readWeights();
    for (int64_t i = 0; i < before.numel(); ++i)
        EXPECT_NEAR(after.at(i), before.at(i) - 0.25f,
                    group.weightScale() * 1.01f);
}

TEST(ArrayGroup, UpdateCanFlipWeightSign)
{
    const DeviceParams p;
    Tensor w({1, 1});
    w(0, 0) = 0.5f;
    ArrayGroup group(p, w);
    Tensor grad({1, 1}, 1.0f);
    group.updateWeights(grad, /*lr=*/1.0f, /*batch_size=*/1);
    const Tensor after = group.readWeights();
    EXPECT_NEAR(after(0, 0), -0.5f, group.weightScale() * 1.01f);
}

TEST(ArrayGroup, ActivityAccumulates)
{
    const DeviceParams p;
    Rng rng(8);
    const Tensor w = Tensor::randn({4, 4}, rng);
    ArrayGroup group(p, w);
    Tensor x({4}, 0.5f);
    (void)group.matVec(x);
    const ArrayActivity activity = group.totalActivity();
    EXPECT_GT(activity.input_spikes, 0);
    EXPECT_GT(activity.write_pulses, 0); // programming during ctor
    EXPECT_GT(activity.mvm_ops, 0);
}

TEST(ArrayGroupDeath, RejectsNonMatrixWeight)
{
    const DeviceParams p;
    Rng rng(20);
    const Tensor cube = Tensor::randn({2, 3, 4}, rng);
    EXPECT_DEATH(ArrayGroup(p, cube), "matrix");
}

TEST(ArrayGroupDeath, RejectsWrongInputSize)
{
    const DeviceParams p;
    Rng rng(21);
    const Tensor w = Tensor::randn({4, 6}, rng);
    ArrayGroup group(p, w);
    Tensor x({5});
    EXPECT_DEATH(group.matVec(x), "matVec input");
}

TEST(ArrayGroupDeath, RejectsWrongGradientShape)
{
    const DeviceParams p;
    Rng rng(22);
    const Tensor w = Tensor::randn({4, 6}, rng);
    ArrayGroup group(p, w);
    Tensor grad({4, 5});
    EXPECT_DEATH(group.updateWeights(grad, 0.1f, 1), "gradient shape");
}

TEST(ArrayGroup, ZeroWeightMatrixComputesZero)
{
    const DeviceParams p;
    Tensor w({3, 3});
    ArrayGroup group(p, w);
    Tensor x({3}, 1.0f);
    const Tensor out = group.matVec(x);
    for (int64_t i = 0; i < out.numel(); ++i)
        EXPECT_FLOAT_EQ(out(i), 0.0f);
}

/** Property sweep: random matrices at several geometries stay within
 *  quantisation error of the float product. */
class ArrayGroupSweep
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>>
{
};

TEST_P(ArrayGroupSweep, MatVecAccuracy)
{
    const auto [n, m] = GetParam();
    const DeviceParams p;
    Rng rng(static_cast<uint64_t>(n * 1000 + m));
    const Tensor w = Tensor::randn({n, m}, rng);
    ArrayGroup group(p, w);
    Tensor x({m});
    for (int64_t i = 0; i < m; ++i)
        x(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
    const Tensor expect = ops::matVec(w, x);
    const Tensor got = group.matVec(x);
    double max_err = 0.0, max_ref = 0.0;
    for (int64_t i = 0; i < expect.numel(); ++i) {
        max_err = std::max(max_err,
                           (double)std::fabs(got(i) - expect(i)));
        max_ref = std::max(max_ref, (double)std::fabs(expect(i)));
    }
    EXPECT_LT(max_err, 0.02 * (1.0 + max_ref));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ArrayGroupSweep,
    ::testing::Values(std::make_pair<int64_t, int64_t>(1, 1),
                      std::make_pair<int64_t, int64_t>(3, 200),
                      std::make_pair<int64_t, int64_t>(200, 3),
                      std::make_pair<int64_t, int64_t>(64, 64),
                      std::make_pair<int64_t, int64_t>(129, 129)));

} // namespace
} // namespace reram
} // namespace pipelayer
