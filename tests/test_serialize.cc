/**
 * @file
 * Tests of binary weight serialisation (the Weight_load persistence
 * path).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "nn/layers.hh"
#include "nn/network.hh"
#include "nn/serialize.hh"

namespace pipelayer {
namespace nn {
namespace {

/** Temp file path unique to the current test. */
std::string
tempPath(const std::string &tag)
{
    return testing::TempDir() + "pl_weights_" + tag + ".bin";
}

Network
makeNet(uint64_t seed)
{
    Rng rng(seed);
    Network net("serialize-net", {1, 6, 6});
    net.add(std::make_unique<ConvLayer>(1, 3, 3, 1, 1, rng));
    net.add(std::make_unique<ReluLayer>());
    net.add(std::make_unique<FlattenLayer>());
    net.add(std::make_unique<InnerProductLayer>(108, 5, rng));
    return net;
}

TEST(Serialize, TensorRoundTrip)
{
    Rng rng(1);
    const Tensor a = Tensor::randn({3, 4}, rng);
    const Tensor b = Tensor::randn({7}, rng);
    const std::string path = tempPath("tensors");
    saveTensors({&a, &b}, path);

    const auto loaded = loadTensors(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].shape(), a.shape());
    EXPECT_EQ(loaded[1].shape(), b.shape());
    for (int64_t i = 0; i < a.numel(); ++i)
        EXPECT_FLOAT_EQ(loaded[0].at(i), a.at(i));
    std::remove(path.c_str());
}

TEST(Serialize, NetworkWeightsRoundTrip)
{
    Network source = makeNet(2);
    Network target = makeNet(3); // different weights, same topology
    const std::string path = tempPath("network");
    saveWeights(source, path);
    loadWeights(target, path);

    Rng rng(4);
    const Tensor x = Tensor::randn({1, 6, 6}, rng);
    const Tensor a = source.infer(x);
    const Tensor b = target.infer(x);
    for (int64_t i = 0; i < a.numel(); ++i)
        EXPECT_FLOAT_EQ(a.at(i), b.at(i));
    std::remove(path.c_str());
}

TEST(Serialize, EmptyTensorListRoundTrip)
{
    const std::string path = tempPath("empty");
    saveTensors({}, path);
    EXPECT_TRUE(loadTensors(path).empty());
    std::remove(path.c_str());
}

TEST(SerializeDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(loadTensors("/nonexistent/dir/weights.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(SerializeDeath, GarbageFileIsFatal)
{
    const std::string path = tempPath("garbage");
    {
        std::ofstream os(path, std::ios::binary);
        os << "this is not a weight file at all";
    }
    EXPECT_EXIT(loadTensors(path), ::testing::ExitedWithCode(1),
                "not a PipeLayer weight file");
    std::remove(path.c_str());
}

TEST(SerializeDeath, TruncatedFileIsFatal)
{
    Network net = makeNet(5);
    const std::string path = tempPath("trunc");
    saveWeights(net, path);
    // Chop the file in half.
    std::ifstream is(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
    is.close();
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(contents.data(),
                 static_cast<std::streamsize>(contents.size() / 2));
    }
    EXPECT_EXIT(loadTensors(path), ::testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

TEST(SerializeDeath, TopologyMismatchIsFatal)
{
    Network small = makeNet(6);
    Rng rng(7);
    Network big("other", {1, 6, 6});
    big.add(std::make_unique<FlattenLayer>());
    big.add(std::make_unique<InnerProductLayer>(36, 9, rng));

    const std::string path = tempPath("mismatch");
    saveWeights(small, path);
    EXPECT_EXIT(loadWeights(big, path), ::testing::ExitedWithCode(1),
                "network expects|holds");
    std::remove(path.c_str());
}

} // namespace
} // namespace nn
} // namespace pipelayer
