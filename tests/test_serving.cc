/**
 * @file
 * Tests of the serving subsystem: arrival-trace generation and
 * replay, the Job description / execution split, and the
 * admission/coalescing/backpressure policy of sim::ServingSim —
 * including the determinism contract (byte-identical reports across
 * worker-thread counts) that lets CI gate serving latency metrics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/arrival.hh"
#include "sim/job.hh"
#include "sim/serving.hh"
#include "workloads/model_zoo.hh"

namespace pipelayer {
namespace sim {
namespace {

// ---------------------------------------------------------------------
// ArrivalTrace

TEST(ArrivalTrace, FixedReproducesBackToBackAndSpacedSchedules)
{
    const ArrivalTrace dense = ArrivalTrace::fixed(4, 1);
    EXPECT_EQ(dense.cycles(), (std::vector<int64_t>{0, 1, 2, 3}));
    const ArrivalTrace spaced = ArrivalTrace::fixed(4, 16);
    EXPECT_EQ(spaced.cycles(), (std::vector<int64_t>{0, 16, 32, 48}));
}

TEST(ArrivalTrace, GeneratorsAreSeedDeterministic)
{
    EXPECT_EQ(ArrivalTrace::poisson(256, 0.25, 7),
              ArrivalTrace::poisson(256, 0.25, 7));
    EXPECT_NE(ArrivalTrace::poisson(256, 0.25, 7),
              ArrivalTrace::poisson(256, 0.25, 8));
    EXPECT_EQ(ArrivalTrace::uniform(256, 1, 9, 7),
              ArrivalTrace::uniform(256, 1, 9, 7));
    EXPECT_EQ(ArrivalTrace::bursty(256, 8, 12, 7),
              ArrivalTrace::bursty(256, 8, 12, 7));
}

TEST(ArrivalTrace, TracesValidateAndBurstsShareCycles)
{
    for (const ArrivalTrace &t :
         {ArrivalTrace::poisson(512, 0.5, 1),
          ArrivalTrace::uniform(512, 0, 7, 1),
          ArrivalTrace::bursty(512, 16, 24, 1)}) {
        EXPECT_NO_THROW(t.validate());
        EXPECT_EQ(t.size(), 512);
        EXPECT_EQ(t.cycles().front(), 0);
    }
    // A burst is same-cycle arrivals by construction.
    const ArrivalTrace bursts = ArrivalTrace::bursty(32, 4, 10, 1);
    EXPECT_EQ(bursts.cycles()[0], bursts.cycles()[3]);
    EXPECT_LT(bursts.cycles()[3], bursts.cycles()[4]);
}

TEST(ArrivalTrace, JsonRoundTripsEveryKind)
{
    for (const ArrivalTrace &t :
         {ArrivalTrace::fixed(64, 3),
          ArrivalTrace::poisson(64, 0.125, 11),
          ArrivalTrace::uniform(64, 2, 5, 11),
          ArrivalTrace::bursty(64, 8, 6, 11),
          ArrivalTrace::replay({0, 0, 3, 9, 9, 40})}) {
        const ArrivalTrace back = ArrivalTrace::fromJson(t.toJson());
        EXPECT_EQ(back, t) << t.describe();
        EXPECT_EQ(back.toJson().dump(), t.toJson().dump())
            << t.describe();
    }
}

TEST(ArrivalTrace, RejectsBadDescriptions)
{
    EXPECT_THROW(ArrivalTrace::fixed(-1, 1), ConfigError);
    EXPECT_THROW(ArrivalTrace::fixed(4, 0), ConfigError);
    EXPECT_THROW(ArrivalTrace::poisson(4, 0.0, 1), ConfigError);
    EXPECT_THROW(ArrivalTrace::uniform(4, 5, 2, 1), ConfigError);
    EXPECT_THROW(ArrivalTrace::bursty(4, 0, 8, 1), ConfigError);
    EXPECT_THROW(ArrivalTrace::bursty(4, 2, 0, 1), ConfigError);
    EXPECT_THROW(ArrivalTrace::replay({3, 1}), ConfigError);
    EXPECT_THROW(ArrivalTrace::replay({-1, 2}), ConfigError);
    EXPECT_THROW(ArrivalTrace::fromJson(json::parse("{}")), ConfigError);
    EXPECT_THROW(
        ArrivalTrace::fromJson(json::parse("{\"kind\": \"laplace\"}")),
        ConfigError);
}

// ---------------------------------------------------------------------
// Job: the description / execution split

TEST(Job, JsonSchemaIsPinned)
{
    // The wire schema is a compatibility contract (docs/serving.md,
    // tools/json_lint): changing it is an API break and must be a
    // deliberate, versioned decision — hence a golden-string test.
    Job job;
    job.network = "Mnist-A";
    job.num_images = 256;
    EXPECT_EQ(job.toJson().dump(),
              "{\"job_version\":1,\"network\":\"Mnist-A\","
              "\"phase\":\"testing\",\"pipelined\":true,"
              "\"batch_size\":64,\"num_images\":256}");

    job.arrivals = ArrivalTrace::fixed(256, 4);
    EXPECT_EQ(job.toJson().dump(),
              "{\"job_version\":1,\"network\":\"Mnist-A\","
              "\"phase\":\"testing\",\"pipelined\":true,"
              "\"batch_size\":64,\"num_images\":256,"
              "\"arrivals\":{\"arrival_trace_version\":1,"
              "\"kind\":\"fixed\",\"num_requests\":256,"
              "\"interval\":4}}");
}

TEST(Job, JsonRoundTrips)
{
    Job job;
    job.network = "Mnist-B";
    job.phase = Phase::Training;
    job.batch_size = 32;
    job.num_images = 128;
    const Job back = Job::fromJson(job.toJson());
    EXPECT_EQ(back.toJson().dump(), job.toJson().dump());

    Job serving;
    serving.arrivals = ArrivalTrace::poisson(64, 0.5, 3);
    serving.num_images = 64;
    const Job sback = Job::fromJson(serving.toJson());
    EXPECT_EQ(sback.toJson().dump(), serving.toJson().dump());
}

TEST(Job, NumImagesImpliedByArrivals)
{
    const Job job = Job::fromJson(json::parse(
        "{\"phase\": \"testing\", \"arrivals\": {\"kind\": \"fixed\", "
        "\"num_requests\": 40, \"interval\": 2}}"));
    EXPECT_EQ(job.num_images, 40);
    EXPECT_EQ(job.arrivals.size(), 40);
}

TEST(Job, RejectsBadDescriptions)
{
    EXPECT_THROW(Job::fromJson(json::parse("{}")), ConfigError);
    EXPECT_THROW(
        Job::fromJson(json::parse("{\"phase\": \"predicting\", "
                                  "\"num_images\": 4}")),
        ConfigError);
    EXPECT_THROW(Job::fromJson(json::parse("{\"phase\": \"testing\"}")),
                 ConfigError);

    // Arrival traces are a serving (pipelined testing) description.
    Job job;
    job.num_images = 8;
    job.arrivals = ArrivalTrace::fixed(8, 2);
    EXPECT_NO_THROW(job.validate());
    job.phase = Phase::Training;
    job.batch_size = 8;
    EXPECT_THROW(job.validate(), ConfigError);
    job.phase = Phase::Testing;
    job.pipelined = false;
    EXPECT_THROW(job.validate(), ConfigError);
    job.pipelined = true;
    job.num_images = 9; // one arrival per image
    EXPECT_THROW(job.validate(), ConfigError);
}

TEST(Job, EquivalentToSimConfigOnEveryReportField)
{
    // The legacy SimConfig overload forwards through Job::fromConfig,
    // so the two entry points must be indistinguishable — compared on
    // the full serialised report, which covers every field.
    const Simulator simulator(workloads::mnistB(),
                              reram::DeviceParams());
    for (const bool training : {false, true}) {
        SimConfig config;
        config.phase = training ? Phase::Training : Phase::Testing;
        config.batch_size = 32;
        config.num_images = 64;
        const SimReport from_config = simulator.run(config);
        const SimReport from_job =
            simulator.run(Job::fromConfig(config));
        EXPECT_EQ(from_config.toJson().dump(),
                  from_job.toJson().dump())
            << (training ? "training" : "testing");
    }
}

TEST(Job, NetworkNameMustMatchSimulator)
{
    const Simulator simulator(workloads::mnistA(),
                              reram::DeviceParams());
    Job job;
    job.num_images = 4;
    job.network = "Mnist-A";
    EXPECT_NO_THROW(simulator.run(job));
    job.network = "VGG-A";
    EXPECT_THROW(simulator.run(job), ConfigError);
}

// ---------------------------------------------------------------------
// ServingSim: admission, coalescing, backpressure

ServingSim
mnistServing()
{
    return ServingSim(workloads::mnistA(), reram::DeviceParams());
}

TEST(ServingConfig, Validates)
{
    ServingConfig config;
    EXPECT_NO_THROW(config.validate());
    config.queue_capacity = 0;
    EXPECT_THROW(config.validate(), ConfigError);
    config.queue_capacity = 1;
    config.max_batch = -1;
    EXPECT_THROW(config.validate(), ConfigError);
    config.max_batch = 0;
    config.max_wait_cycles = -1;
    EXPECT_THROW(config.validate(), ConfigError);
}

TEST(ServingSim, FullBatchLaunchesWithoutWaitingForDeadline)
{
    // max_batch same-cycle arrivals fill a batch instantly: entries
    // serialise from the arrival cycle, one per cycle, no deadline
    // wait paid.
    const ServingSim serving = mnistServing();
    ServingConfig config;
    config.max_batch = 4;
    config.max_wait_cycles = 100;
    const ServingReport rep =
        serving.run(ArrivalTrace::replay({5, 5, 5, 5}), config);
    EXPECT_EQ(rep.admitted_count, 4);
    EXPECT_EQ(rep.shed_count, 0);
    EXPECT_EQ(rep.batch_count, 1);
    EXPECT_EQ(rep.deadline_batches, 0);
    for (int64_t i = 0; i < 4; ++i) {
        const CompletionRecord &rec =
            rep.completions[static_cast<size_t>(i)];
        EXPECT_EQ(rec.entry_cycle, 5 + i);
        EXPECT_EQ(rec.completion_cycle, 5 + i + serving.depth());
        EXPECT_EQ(rec.batch_size, 4);
    }
}

TEST(ServingSim, DeadlineForcesPartialBatch)
{
    // A lone request cannot fill a batch; the max-wait deadline
    // bounds its latency at max_wait + depth instead of forever.
    const ServingSim serving = mnistServing();
    ServingConfig config;
    config.max_batch = 8;
    config.max_wait_cycles = 12;
    const ServingReport rep =
        serving.run(ArrivalTrace::replay({0}), config);
    EXPECT_EQ(rep.admitted_count, 1);
    EXPECT_EQ(rep.batch_count, 1);
    EXPECT_EQ(rep.deadline_batches, 1);
    EXPECT_EQ(rep.completions[0].entry_cycle, 12);
    EXPECT_EQ(rep.completions[0].latency_cycles,
              12 + serving.depth());
    EXPECT_EQ(rep.p50_latency_cycles, 12 + serving.depth());
    EXPECT_EQ(rep.p99_latency_cycles, 12 + serving.depth());
}

TEST(ServingSim, ShedsAtCapacityPreservingArrivalOrder)
{
    // Six same-cycle arrivals against a 3-deep queue: the first three
    // (in arrival order) are admitted, the rest shed and counted.
    const ServingSim serving = mnistServing();
    ServingConfig config;
    config.queue_capacity = 3;
    config.max_batch = 3;
    config.max_wait_cycles = 4;
    const ServingReport rep =
        serving.run(ArrivalTrace::replay({0, 0, 0, 0, 0, 0}), config);
    EXPECT_EQ(rep.arrival_count, 6);
    EXPECT_EQ(rep.admitted_count, 3);
    EXPECT_EQ(rep.shed_count, 3);
    EXPECT_EQ(rep.admitted_count + rep.shed_count, rep.arrival_count);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_TRUE(rep.completions[i].admitted) << i;
    for (size_t i = 3; i < 6; ++i)
        EXPECT_FALSE(rep.completions[i].admitted) << i;
    // Admitted entries keep arrival order.
    EXPECT_LT(rep.completions[0].entry_cycle,
              rep.completions[1].entry_cycle);
    EXPECT_LT(rep.completions[1].entry_cycle,
              rep.completions[2].entry_cycle);
    EXPECT_EQ(rep.peak_queue_depth, 3);
}

TEST(ServingSim, BatchSizeNeverExceedsMax)
{
    const ServingSim serving = mnistServing();
    ServingConfig config;
    config.max_batch = 6;
    config.max_wait_cycles = 16;
    const ServingReport rep =
        serving.run(ArrivalTrace::bursty(512, 32, 8, 3), config);
    int64_t covered = 0;
    for (const auto &bucket : rep.batch_size_hist) {
        EXPECT_GE(bucket.first, 1);
        EXPECT_LE(bucket.first, 6);
        covered += bucket.first * bucket.second;
    }
    EXPECT_EQ(covered, rep.admitted_count);
    for (const CompletionRecord &rec : rep.completions) {
        if (rec.admitted)
            EXPECT_LE(rec.batch_size, 6);
    }
}

TEST(ServingSim, AdmittedEntriesProduceHazardFreeSchedule)
{
    // Entry cycles are strictly increasing by construction, so the
    // executed schedule sees no structural hazards: overload shows up
    // as shed requests instead.
    const ServingSim serving = mnistServing();
    ServingConfig config;
    config.queue_capacity = 16;
    const ServingReport rep =
        serving.run(ArrivalTrace::poisson(1024, 2.0, 9), config);
    EXPECT_GT(rep.shed_count, 0); // 2 req/cycle is overload
    EXPECT_EQ(rep.sched.structural_hazards, 0);
    EXPECT_EQ(rep.execution.structural_hazards, 0);
    EXPECT_EQ(rep.execution.logical_cycles, rep.sched.total_cycles);
}

TEST(ServingSim, ReportIsByteIdenticalAcrossThreadCounts)
{
    // The whole serving report — policy metrics and the embedded
    // execution report — is logical-cycle arithmetic; PL_THREADS must
    // not be observable in it (the property CI's serving smoke and
    // bench_compare gate rely on).
    const ServingSim serving = mnistServing();
    const ArrivalTrace trace = ArrivalTrace::poisson(2048, 0.4, 21);
    const ServingConfig config;
    const int64_t saved = threadCount();
    setThreadCount(1);
    const std::string t1 = serving.run(trace, config).toJson().dump();
    setThreadCount(4);
    const std::string t4 = serving.run(trace, config).toJson().dump();
    setThreadCount(saved);
    EXPECT_EQ(t1, t4);
}

TEST(ServingSim, EmptyTraceProducesEmptyReport)
{
    const ServingSim serving = mnistServing();
    const ServingReport rep =
        serving.run(ArrivalTrace::replay({}), ServingConfig());
    EXPECT_EQ(rep.arrival_count, 0);
    EXPECT_EQ(rep.admitted_count, 0);
    EXPECT_EQ(rep.shed_count, 0);
    EXPECT_EQ(rep.batch_count, 0);
    EXPECT_EQ(rep.p50_latency_cycles, 0);
}

} // namespace
} // namespace sim
} // namespace pipelayer
