/**
 * @file
 * Tests of the timing/energy/area simulator: internal consistency,
 * monotonicity properties and the qualitative relations the paper's
 * evaluation depends on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/simulator.hh"
#include "workloads/model_zoo.hh"

namespace pipelayer {
namespace sim {
namespace {

SimConfig
testingConfig(int64_t images = 256)
{
    SimConfig c;
    c.phase = Phase::Testing;
    c.pipelined = true;
    c.num_images = images;
    return c;
}

SimConfig
trainingConfig(int64_t images = 256, int64_t batch = 64)
{
    SimConfig c;
    c.phase = Phase::Training;
    c.pipelined = true;
    c.batch_size = batch;
    c.num_images = images;
    return c;
}

TEST(Simulator, ReportIsInternallyConsistent)
{
    Simulator simulator(workloads::mnistO(), reram::DeviceParams());
    const SimReport r = simulator.run(testingConfig());
    EXPECT_GT(r.logical_cycles, 0);
    EXPECT_GT(r.cycle_time, 0.0);
    EXPECT_NEAR(r.total_time, r.logical_cycles * r.cycle_time, 1e-12);
    EXPECT_NEAR(r.time_per_image * r.config.num_images, r.total_time,
                1e-12);
    EXPECT_NEAR(r.throughput * r.time_per_image, 1.0, 1e-9);
    EXPECT_GT(r.energy_per_image, 0.0);
    EXPECT_GT(r.area_mm2, 0.0);
    EXPECT_EQ(r.buffer_violations, 0);
    EXPECT_EQ(r.structural_hazards, 0);
}

TEST(Simulator, TestingEnergyHasNoTrainingComponents)
{
    Simulator simulator(workloads::mnistA(), reram::DeviceParams());
    const SimReport r = simulator.run(testingConfig());
    EXPECT_EQ(r.energy.backward_compute, 0.0);
    EXPECT_EQ(r.energy.derivative_compute, 0.0);
    EXPECT_EQ(r.energy.weight_update, 0.0);
    EXPECT_GT(r.energy.forward_compute, 0.0);
    EXPECT_GT(r.energy.buffer_traffic, 0.0);
}

TEST(Simulator, TrainingCostsMoreThanTesting)
{
    Simulator simulator(workloads::mnistO(), reram::DeviceParams());
    const SimReport test = simulator.run(testingConfig());
    const SimReport train = simulator.run(trainingConfig());
    EXPECT_GT(train.time_per_image, test.time_per_image);
    EXPECT_GT(train.energy_per_image, test.energy_per_image);
}

TEST(Simulator, PipelinedBeatsNonPipelined)
{
    Simulator simulator(workloads::mnistC(), reram::DeviceParams());
    SimConfig piped = trainingConfig();
    SimConfig serial = trainingConfig();
    serial.pipelined = false;
    const SimReport a = simulator.run(piped);
    const SimReport b = simulator.run(serial);
    EXPECT_LT(a.total_time, b.total_time);
}

TEST(Simulator, ThroughputIndependentOfNForLargeN)
{
    Simulator simulator(workloads::mnistB(), reram::DeviceParams());
    const SimReport small = simulator.run(testingConfig(512));
    const SimReport large = simulator.run(testingConfig(4096));
    EXPECT_NEAR(small.throughput / large.throughput, 1.0, 0.02);
}

TEST(Simulator, EnergyScalesLinearlyWithImages)
{
    Simulator simulator(workloads::mnistA(), reram::DeviceParams());
    const SimReport a = simulator.run(trainingConfig(128, 64));
    const SimReport b = simulator.run(trainingConfig(256, 64));
    EXPECT_NEAR(b.energy.total() / a.energy.total(), 2.0, 0.01);
}

TEST(Simulator, GranularityScalesThroughput)
{
    const auto spec = workloads::vggA();
    const reram::DeviceParams params;
    const auto base = arch::GranularityConfig::balanced(spec);

    Simulator coarse(spec, params, base.scaled(spec, 0.25));
    Simulator fine(spec, params, base.scaled(spec, 4.0));
    const SimReport a = coarse.run(testingConfig(64));
    const SimReport b = fine.run(testingConfig(64));
    EXPECT_GT(b.throughput, a.throughput);
    EXPECT_GT(b.area_mm2, a.area_mm2);
}

TEST(Simulator, NaiveGranularityMatchesFig4StepCount)
{
    // Fig. 4: with G = 1 the example layer needs #windows sequential
    // inputs; cycle time = windows x 16-slot MVM latency.
    workloads::NetworkSpec spec;
    spec.name = "fig4";
    spec.layers.push_back(
        workloads::LayerSpec::conv(128, 66, 66, 256, 3));
    const reram::DeviceParams params;
    Simulator simulator(spec, params,
                        arch::GranularityConfig::naive(spec));
    const SimReport r = simulator.run(testingConfig(16));
    EXPECT_NEAR(r.cycle_time, 4096 * params.mvmLatency(), 1e-9);
}

TEST(Simulator, MnistCycleTimeHitsSpikeFloor)
{
    // Balanced G fully replicates MNIST-scale MLP layers, so the
    // logical cycle bottoms out at one 16-slot MVM: the latency floor
    // that caps the paper's MNIST speedups near ~46x.
    Simulator simulator(workloads::mnistA(), reram::DeviceParams());
    const reram::DeviceParams params;
    const SimReport r = simulator.run(testingConfig());
    EXPECT_NEAR(r.cycle_time, params.mvmLatency(), 1e-12);
}

TEST(Simulator, TrainingCyclesMatchPaperFormula)
{
    const auto spec = workloads::vggA(); // L = 11
    Simulator simulator(spec, reram::DeviceParams());
    const SimReport r = simulator.run(trainingConfig(256, 64));
    // (N/B)(2L + B + 1) = 4 * (22 + 64 + 1) = 348.
    EXPECT_EQ(r.logical_cycles, 348);
}

TEST(Simulator, AreaIndependentOfImageCount)
{
    Simulator simulator(workloads::vggB(), reram::DeviceParams());
    const SimReport a = simulator.run(trainingConfig(64, 64));
    const SimReport b = simulator.run(trainingConfig(1024, 64));
    EXPECT_DOUBLE_EQ(a.area_mm2, b.area_mm2);
}

TEST(Simulator, PrintMentionsKeyFields)
{
    Simulator simulator(workloads::mnistA(), reram::DeviceParams());
    const SimReport r = simulator.run(testingConfig());
    std::ostringstream os;
    r.print(os);
    EXPECT_NE(os.str().find("Mnist-A"), std::string::npos);
    EXPECT_NE(os.str().find("throughput"), std::string::npos);
    EXPECT_NE(os.str().find("GOPS"), std::string::npos);
}

TEST(Simulator, EfficiencyMetricsArePositiveAndFinite)
{
    for (const auto &spec : workloads::evaluationNetworks()) {
        Simulator simulator(spec, reram::DeviceParams());
        const SimReport r = simulator.run(testingConfig(64));
        EXPECT_GT(r.gops_per_s, 0.0) << spec.name;
        EXPECT_GT(r.gops_per_s_per_mm2, 0.0) << spec.name;
        EXPECT_GT(r.gops_per_w, 0.0) << spec.name;
        EXPECT_TRUE(std::isfinite(r.gops_per_w)) << spec.name;
    }
}

TEST(Simulator, PerLayerBreakdownIsConsistent)
{
    Simulator simulator(workloads::mnistO(), reram::DeviceParams());
    const SimReport r = simulator.run(trainingConfig(128, 32));
    ASSERT_EQ(static_cast<int64_t>(r.per_layer.size()),
              workloads::mnistO().pipelineDepth());

    // Per-layer forward energies, times N, must sum to the total.
    double fwd = 0.0, bwd = 0.0, deriv = 0.0;
    double worst_latency = 0.0;
    for (const auto &cost : r.per_layer) {
        fwd += cost.forward_energy;
        bwd += cost.backward_energy;
        deriv += cost.derivative_energy;
        worst_latency = std::max(worst_latency, cost.training_latency);
        EXPECT_GE(cost.training_latency, cost.forward_latency);
        EXPECT_GT(cost.arrays, 0);
    }
    const double n = 128.0;
    EXPECT_NEAR(fwd * n, r.energy.forward_compute,
                1e-9 * r.energy.forward_compute);
    EXPECT_NEAR(bwd * n, r.energy.backward_compute,
                1e-9 * r.energy.backward_compute);
    EXPECT_NEAR(deriv * n, r.energy.derivative_compute,
                1e-9 * r.energy.derivative_compute);
    // The slowest stage's training latency is the logical cycle time.
    EXPECT_DOUBLE_EQ(worst_latency, r.cycle_time);
}

TEST(Simulator, TestingBreakdownHasNoTrainingCosts)
{
    Simulator simulator(workloads::mnistB(), reram::DeviceParams());
    const SimReport r = simulator.run(testingConfig(64));
    for (const auto &cost : r.per_layer) {
        EXPECT_EQ(cost.backward_energy, 0.0);
        EXPECT_EQ(cost.derivative_energy, 0.0);
        EXPECT_DOUBLE_EQ(cost.training_latency, cost.forward_latency);
    }
}

TEST(Simulator, EnergyBreakdownComponentsSumToTotal)
{
    Simulator simulator(workloads::mnistO(), reram::DeviceParams());
    const SimReport r = simulator.run(trainingConfig(128, 64));
    const EnergyBreakdown &e = r.energy;
    EXPECT_NEAR(e.total(),
                e.forward_compute + e.backward_compute +
                    e.derivative_compute + e.weight_update +
                    e.buffer_traffic + e.controller,
                1e-12);
    EXPECT_GT(e.controller, 0.0);
}

TEST(Simulator, VariationKnobsDoNotChangeTiming)
{
    // Device non-idealities perturb values, not schedules.
    reram::DeviceParams noisy;
    noisy.write_noise_sigma = 0.2;
    noisy.stuck_at_fault_rate = 0.05;
    Simulator clean(workloads::mnistO(), reram::DeviceParams());
    Simulator dirty(workloads::mnistO(), noisy);
    const SimReport a = clean.run(testingConfig(64));
    const SimReport b = dirty.run(testingConfig(64));
    EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
    EXPECT_EQ(a.logical_cycles, b.logical_cycles);
}

TEST(Simulator, DumpStatsEmitsEveryMetric)
{
    Simulator simulator(workloads::mnistA(), reram::DeviceParams());
    const SimReport r = simulator.run(trainingConfig(64, 32));
    std::ostringstream os;
    r.dumpStats(os);
    const std::string out = os.str();
    for (const char *name :
         {"sim.Mnist-A.logical_cycles", "sim.Mnist-A.throughput_img_s",
          "sim.Mnist-A.energy_per_image_j", "sim.Mnist-A.area_mm2",
          "sim.Mnist-A.gops_per_w", "sim.Mnist-A.energy_update_j"}) {
        EXPECT_NE(out.find(name), std::string::npos) << name;
    }
    // Stats format: a '#' comment per line.
    EXPECT_NE(out.find("# images per second"), std::string::npos);
}

TEST(Simulator, DumpStatsValuesMatchReport)
{
    Simulator simulator(workloads::mnistB(), reram::DeviceParams());
    const SimReport r = simulator.run(testingConfig(128));
    std::ostringstream os;
    r.dumpStats(os);
    std::istringstream is(os.str());
    std::string line;
    bool found_cycles = false, found_area = false;
    while (std::getline(is, line)) {
        std::istringstream fields(line);
        std::string name;
        double value;
        fields >> name >> value;
        if (name == "sim.Mnist-B.logical_cycles") {
            EXPECT_DOUBLE_EQ(value,
                             static_cast<double>(r.logical_cycles));
            found_cycles = true;
        } else if (name == "sim.Mnist-B.area_mm2") {
            EXPECT_NEAR(value, r.area_mm2, 1e-6 * r.area_mm2);
            found_area = true;
        }
    }
    EXPECT_TRUE(found_cycles);
    EXPECT_TRUE(found_area);
}

TEST(Simulator, TrainingCycleTimeDominatedByDerivativeWrites)
{
    // For a wide conv network, the serialized d-writes exceed the
    // forward MVM time — the mechanism behind lower training
    // speedups (EXPERIMENTS.md).
    const auto spec = workloads::vggA();
    Simulator simulator(spec, reram::DeviceParams());
    const SimReport test = simulator.run(testingConfig(64));
    const SimReport train = simulator.run(trainingConfig(64, 64));
    EXPECT_GT(train.cycle_time, 3.0 * test.cycle_time);
}

} // namespace
} // namespace sim
} // namespace pipelayer
