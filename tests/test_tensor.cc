/**
 * @file
 * Unit tests for the Tensor container.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/tensor.hh"

namespace pipelayer {
namespace {

TEST(Tensor, ShapeNumel)
{
    EXPECT_EQ(shapeNumel({2, 3, 4}), 24);
    EXPECT_EQ(shapeNumel({}), 1);
    EXPECT_EQ(shapeNumel({0, 5}), 0);
}

TEST(Tensor, ShapeToString)
{
    EXPECT_EQ(shapeToString({2, 3}), "(2, 3)");
    EXPECT_EQ(shapeToString({}), "()");
}

TEST(Tensor, ZeroInitialised)
{
    Tensor t({2, 2});
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, FillValueConstructor)
{
    Tensor t({3}, 2.5f);
    EXPECT_EQ(t(0), 2.5f);
    EXPECT_EQ(t(2), 2.5f);
}

TEST(Tensor, RowMajorIndexing3D)
{
    Tensor t({2, 3, 4});
    t(1, 2, 3) = 9.0f;
    // flat = (1*3 + 2)*4 + 3 = 23
    EXPECT_EQ(t.at(23), 9.0f);
}

TEST(Tensor, RowMajorIndexing4D)
{
    Tensor t({2, 2, 2, 2});
    t(1, 0, 1, 0) = 5.0f;
    // flat = ((1*2 + 0)*2 + 1)*2 + 0 = 10
    EXPECT_EQ(t.at(10), 5.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 3});
    t(1, 2) = 7.0f;
    const Tensor r = t.reshape({6});
    EXPECT_EQ(r(5), 7.0f);
    EXPECT_EQ(r.rank(), 1);
}

TEST(Tensor, ElementwiseArithmetic)
{
    Tensor a({2}, 1.0f), b({2}, 2.0f);
    Tensor c = a + b;
    EXPECT_EQ(c(0), 3.0f);
    c -= a;
    EXPECT_EQ(c(1), 2.0f);
    c *= 4.0f;
    EXPECT_EQ(c(0), 8.0f);
}

TEST(Tensor, Hadamard)
{
    Tensor a({3}, 2.0f), b({3});
    b(0) = 1.0f;
    b(1) = -2.0f;
    b(2) = 0.0f;
    const Tensor h = a.hadamard(b);
    EXPECT_EQ(h(0), 2.0f);
    EXPECT_EQ(h(1), -4.0f);
    EXPECT_EQ(h(2), 0.0f);
}

TEST(Tensor, SumAndArgmaxAndAbsMax)
{
    Tensor t({4});
    t(0) = 1.0f;
    t(1) = -5.0f;
    t(2) = 3.0f;
    t(3) = 3.0f;
    EXPECT_DOUBLE_EQ(t.sum(), 2.0);
    EXPECT_EQ(t.argmax(), 2); // first of the ties
    EXPECT_EQ(t.absMax(), 5.0f);
}

TEST(Tensor, RandnIsDeterministicGivenSeed)
{
    Rng rng1(99), rng2(99);
    const Tensor a = Tensor::randn({10}, rng1);
    const Tensor b = Tensor::randn({10}, rng2);
    for (int64_t i = 0; i < a.numel(); ++i)
        EXPECT_EQ(a.at(i), b.at(i));
}

TEST(Tensor, RandnMoments)
{
    Rng rng(7);
    const Tensor t = Tensor::randn({10000}, rng, 1.0f, 2.0f);
    EXPECT_NEAR(t.sum() / t.numel(), 1.0, 0.1);
}

TEST(Tensor, FillOverwrites)
{
    Tensor t({5}, 3.0f);
    t.fill(-1.0f);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t.at(i), -1.0f);
}

TEST(TensorDeath, OutOfRangeAccessPanics)
{
    Tensor t({2, 2});
    EXPECT_DEATH(t.at(4), "out of range");
    EXPECT_DEATH(t(2, 0), "out of range");
}

TEST(TensorDeath, RankMismatchPanics)
{
    Tensor t({2, 2});
    EXPECT_DEATH(t(0), "1-D access");
}

TEST(TensorDeath, BadReshapePanics)
{
    Tensor t({2, 2});
    EXPECT_DEATH(t.reshape({3}), "changes element count");
}

} // namespace
} // namespace pipelayer
