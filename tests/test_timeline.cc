/**
 * @file
 * Tests of the Fig.-6-style pipeline timeline renderer and the
 * momentum extension of the trainer.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "arch/granularity.hh"
#include "arch/mapping.hh"
#include "arch/pipeline.hh"
#include "common/rng.hh"
#include "nn/layers.hh"
#include "nn/trainer.hh"
#include "workloads/layer_spec.hh"
#include "workloads/synthetic_data.hh"

namespace pipelayer {
namespace {

workloads::NetworkSpec
chain(int64_t depth)
{
    workloads::NetworkSpec spec;
    spec.name = "chain";
    for (int64_t i = 0; i < depth; ++i)
        spec.layers.push_back(workloads::LayerSpec::innerProduct(8, 8));
    return spec;
}

arch::NetworkMapping
mapFor(const workloads::NetworkSpec &spec, int64_t batch)
{
    static reram::DeviceParams params;
    return arch::NetworkMapping(
        spec, arch::GranularityConfig::naive(spec), params, true, batch);
}

TEST(Timeline, TrainingChartHasAllUnitRows)
{
    const auto spec = chain(3);
    const auto map = mapFor(spec, 4);
    arch::ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 4;
    config.num_images = 4;
    arch::PipelineScheduler scheduler(map, config);
    const std::string chart = scheduler.renderTimeline();

    // Forward stages, error seed, error-backward units, derivative
    // units and the update row must all appear.
    EXPECT_NE(chart.find("A1 "), std::string::npos);
    EXPECT_NE(chart.find("A3 "), std::string::npos);
    EXPECT_NE(chart.find("ErrL"), std::string::npos);
    EXPECT_NE(chart.find("A22"), std::string::npos);
    EXPECT_NE(chart.find("dW1"), std::string::npos);
    EXPECT_NE(chart.find("Upd"), std::string::npos);
}

TEST(Timeline, TestingChartOmitsBackwardRows)
{
    const auto spec = chain(3);
    const auto map = mapFor(spec, 1);
    arch::ScheduleConfig config;
    config.pipelined = true;
    config.training = false;
    config.num_images = 4;
    arch::PipelineScheduler scheduler(map, config);
    const std::string chart = scheduler.renderTimeline();
    EXPECT_NE(chart.find("A1"), std::string::npos);
    EXPECT_EQ(chart.find("ErrL"), std::string::npos);
    EXPECT_EQ(chart.find("Upd"), std::string::npos);
}

TEST(Timeline, Fig3SingleImageOccupiesExpectedCycles)
{
    // One image through L = 3: forward at A_l in cycle l, ∂W1 in
    // cycle 2L+1 = 7 — the exact Fig. 3 timing.
    const auto spec = chain(3);
    const auto map = mapFor(spec, 1);
    arch::ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 1;
    config.num_images = 1;
    arch::PipelineScheduler scheduler(map, config);
    const std::string chart = scheduler.renderTimeline();

    std::istringstream is(chart);
    std::string line;
    std::getline(is, line); // header
    std::getline(is, line); // A1 row
    ASSERT_GE(line.size(), 6u);
    // Image 0 occupies A1 at cycle 1 (first column after the label).
    const size_t first_col = line.find_first_of("0");
    EXPECT_NE(first_col, std::string::npos);
}

TEST(Timeline, ClipsLongSchedules)
{
    const auto spec = chain(2);
    const auto map = mapFor(spec, 8);
    arch::ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 8;
    config.num_images = 64;
    arch::PipelineScheduler scheduler(map, config);
    const std::string chart = scheduler.renderTimeline(10);
    EXPECT_NE(chart.find("clipped"), std::string::npos);
}

TEST(Timeline, PipelinedChartShowsOverlap)
{
    // In the pipelined chart, stage A1 hosts a different image every
    // cycle within a batch: cells "012345..." appear consecutively.
    const auto spec = chain(2);
    const auto map = mapFor(spec, 6);
    arch::ScheduleConfig config;
    config.pipelined = true;
    config.training = true;
    config.batch_size = 6;
    config.num_images = 6;
    arch::PipelineScheduler scheduler(map, config);
    const std::string chart = scheduler.renderTimeline();
    EXPECT_NE(chart.find("012345"), std::string::npos);
}

// ---------------------------------------------------------------------
// Momentum
// ---------------------------------------------------------------------

TEST(Momentum, ZeroMomentumMatchesPlainSgd)
{
    Rng rng_a(1), rng_b(1);
    nn::InnerProductLayer a(8, 4, rng_a), b(8, 4, rng_b);
    b.setMomentum(0.0f);

    Rng data_rng(2);
    const Tensor x = Tensor::randn({8}, data_rng);
    const Tensor delta = Tensor::randn({4}, data_rng);
    for (nn::InnerProductLayer *layer : {&a, &b}) {
        layer->zeroGrads();
        layer->forward(x);
        layer->backward(delta);
        layer->applyUpdate(0.1f, 2);
    }
    const Tensor &wa = *a.parameters()[0];
    const Tensor &wb = *b.parameters()[0];
    for (int64_t i = 0; i < wa.numel(); ++i)
        EXPECT_FLOAT_EQ(wa.at(i), wb.at(i));
}

TEST(Momentum, RepeatedGradientsAccelerate)
{
    // With momentum, the second identical update moves the weights
    // further than the first (velocity builds up).
    Rng rng(3);
    nn::InnerProductLayer layer(4, 2, rng);
    layer.setMomentum(0.9f);

    Rng data_rng(4);
    const Tensor x = Tensor::randn({4}, data_rng);
    const Tensor delta = Tensor::randn({2}, data_rng);

    auto step = [&]() {
        const Tensor before = *layer.parameters()[0];
        layer.zeroGrads();
        layer.forward(x);
        layer.backward(delta);
        layer.applyUpdate(0.1f, 1);
        const Tensor &after = *layer.parameters()[0];
        double norm = 0.0;
        for (int64_t i = 0; i < after.numel(); ++i) {
            const double d = after.at(i) - before.at(i);
            norm += d * d;
        }
        return norm;
    };

    const double first = step();
    const double second = step();
    EXPECT_GT(second, first * 1.5);
}

TEST(Momentum, TrainerAppliesConfig)
{
    Rng rng(5);
    nn::Network net("momentum-net", {1, 8, 8});
    net.add(std::make_unique<nn::FlattenLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(64, 4, rng));

    workloads::SyntheticConfig data;
    data.classes = 4;
    data.image_size = 8;
    data.train_per_class = 20;
    data.test_per_class = 8;
    auto task = workloads::makeSyntheticTask(data);

    nn::TrainConfig config;
    config.epochs = 6;
    config.batch_size = 8;
    config.learning_rate = 0.05f;
    config.momentum = 0.9f;
    Rng train_rng(6);
    const auto result =
        nn::train(net, task.train, task.test, config, train_rng);
    EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
    EXPECT_GT(result.final_test_accuracy, 0.7);
}

TEST(MomentumDeath, InvalidCoefficientPanics)
{
    Rng rng(7);
    nn::InnerProductLayer layer(4, 2, rng);
    EXPECT_DEATH(layer.setMomentum(1.0f), "momentum");
    EXPECT_DEATH(layer.setMomentum(-0.1f), "momentum");
}

} // namespace
} // namespace pipelayer
