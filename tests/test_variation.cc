/**
 * @file
 * Tests of the device non-ideality model: programming noise and
 * stuck-at faults (the extension study).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "reram/array_group.hh"
#include "reram/crossbar.hh"
#include "tensor/ops.hh"

namespace pipelayer {
namespace reram {
namespace {

TEST(Variation, IdealDeviceHasNoStuckCells)
{
    const DeviceParams p; // defaults are ideal
    CrossbarArray array(p);
    EXPECT_EQ(array.stuckCellCount(), 0);
    array.programCell(0, 0, 9);
    EXPECT_EQ(array.cell(0, 0), 9); // exact programming
}

TEST(Variation, StuckCellRateIsApproximatelyRespected)
{
    DeviceParams p;
    p.stuck_at_fault_rate = 0.1;
    CrossbarArray array(p, /*instance_seed=*/1);
    const double cells = static_cast<double>(p.array_rows *
                                             p.array_cols);
    const double rate =
        static_cast<double>(array.stuckCellCount()) / cells;
    EXPECT_NEAR(rate, 0.1, 0.02);
}

TEST(Variation, StuckCellsIgnoreProgramming)
{
    DeviceParams p;
    p.stuck_at_fault_rate = 1.0; // every cell stuck
    CrossbarArray array(p, 2);
    const int64_t before = array.cell(3, 3);
    array.programCell(3, 3, before == 0 ? 15 : 0);
    EXPECT_EQ(array.cell(3, 3), before);
}

TEST(Variation, WriteNoisePerturbsCodes)
{
    DeviceParams p;
    p.write_noise_sigma = 0.1;
    CrossbarArray array(p, 3);
    int64_t differs = 0;
    for (int64_t r = 0; r < 64; ++r) {
        array.programCell(r, 0, 8);
        differs += array.cell(r, 0) != 8 ? 1 : 0;
        EXPECT_GE(array.cell(r, 0), 0);
        EXPECT_LE(array.cell(r, 0), p.maxCellCode());
    }
    EXPECT_GT(differs, 16); // sigma = 1.5 codes: most writes miss
}

TEST(Variation, DrawsAreDeterministicPerSeed)
{
    DeviceParams p;
    p.write_noise_sigma = 0.1;
    CrossbarArray a(p, 7), b(p, 7), c(p, 8);
    a.programCell(0, 0, 8);
    b.programCell(0, 0, 8);
    c.programCell(0, 0, 8);
    EXPECT_EQ(a.cell(0, 0), b.cell(0, 0));
    (void)c; // different instance seed may differ; just must not crash
}

/** Mean |error| of an ArrayGroup matVec against the float product. */
double
groupError(const DeviceParams &p, uint64_t seed)
{
    Rng rng(seed);
    const Tensor w = Tensor::randn({16, 24}, rng);
    ArrayGroup group(p, w);
    Tensor x({24});
    for (int64_t i = 0; i < 24; ++i)
        x(i) = static_cast<float>(rng.uniform());
    const Tensor expect = ops::matVec(w, x);
    const Tensor got = group.matVec(x);
    double err = 0.0;
    for (int64_t i = 0; i < expect.numel(); ++i)
        err += std::fabs(got(i) - expect(i));
    return err / static_cast<double>(expect.numel());
}

TEST(Variation, NoiseDegradesMatVecMonotonically)
{
    DeviceParams ideal;
    DeviceParams mild;
    mild.write_noise_sigma = 0.02;
    DeviceParams harsh;
    harsh.write_noise_sigma = 0.2;
    const double e0 = groupError(ideal, 42);
    const double e1 = groupError(mild, 42);
    const double e2 = groupError(harsh, 42);
    EXPECT_LT(e0, e1);
    EXPECT_LT(e1, e2);
}

TEST(Variation, StuckCellsDegradeMatVec)
{
    DeviceParams ideal;
    DeviceParams faulty;
    faulty.stuck_at_fault_rate = 0.05;
    EXPECT_LT(groupError(ideal, 43), groupError(faulty, 43));
}

TEST(Variation, SeedChangesTheFaultPattern)
{
    DeviceParams p;
    p.stuck_at_fault_rate = 0.05;
    DeviceParams q = p;
    q.variation_seed = 0xdead;
    // Different fault patterns almost surely give different errors.
    EXPECT_NE(groupError(p, 44), groupError(q, 44));
}

TEST(VariationDeath, BadParametersPanic)
{
    DeviceParams p;
    p.stuck_at_fault_rate = 1.5;
    EXPECT_DEATH(CrossbarArray array(p), "variation");
}

} // namespace
} // namespace reram
} // namespace pipelayer
