/**
 * @file
 * Tests for the layer/network descriptors and the model zoo: the
 * evaluation networks must have the published geometry and parameter
 * counts.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "nn/layers.hh"
#include "workloads/layer_spec.hh"
#include "workloads/model_zoo.hh"

namespace pipelayer {
namespace workloads {
namespace {

TEST(LayerSpec, ConvGeometry)
{
    const LayerSpec s = LayerSpec::conv(3, 224, 224, 64, 3, 1, 1);
    EXPECT_EQ(s.out_h, 224);
    EXPECT_EQ(s.out_w, 224);
    EXPECT_EQ(s.weightRows(), 3 * 3 * 3 + 1);
    EXPECT_EQ(s.weightCols(), 64);
    EXPECT_EQ(s.numWindows(), 224 * 224);
    EXPECT_EQ(s.paramCount(), 64 * (27 + 1));
}

TEST(LayerSpec, Fig4Example)
{
    // Paper Fig. 4: 66x66x128 input, 3x3x128x256 kernels ->
    // 64x64x256 output; the naive array is 1153x256 (with bias) and
    // there are 4096 windows.
    const LayerSpec s = LayerSpec::conv(128, 66, 66, 256, 3);
    EXPECT_EQ(s.out_h, 64);
    EXPECT_EQ(s.out_w, 64);
    EXPECT_EQ(s.weightRows(), 3 * 3 * 128 + 1);
    EXPECT_EQ(s.weightCols(), 256);
    EXPECT_EQ(s.numWindows(), 4096);
}

TEST(LayerSpec, StridedConv)
{
    const LayerSpec s = LayerSpec::conv(3, 227, 227, 96, 11, 4, 0);
    EXPECT_EQ(s.out_h, 55);
    EXPECT_EQ(s.out_w, 55);
}

TEST(LayerSpec, PoolGeometry)
{
    const LayerSpec s = LayerSpec::maxPool(96, 55, 55, 3, 2);
    EXPECT_EQ(s.out_h, 27);
    EXPECT_EQ(s.out_c, 96);
    EXPECT_FALSE(s.usesArrays());
    EXPECT_EQ(s.paramCount(), 0);
}

TEST(LayerSpec, InnerProduct)
{
    const LayerSpec s = LayerSpec::innerProduct(4096, 1000);
    EXPECT_EQ(s.weightRows(), 4097);
    EXPECT_EQ(s.weightCols(), 1000);
    EXPECT_EQ(s.numWindows(), 1);
    EXPECT_EQ(s.forwardOps(), 2 * 4096 * 1000);
}

TEST(LayerSpec, OpsCountsMatchPaperFormulas)
{
    // Paper §2.1: a conv layer performs X*Y*C*(C_l*Kx*Ky)
    // multiplications and about as many additions.
    const LayerSpec s = LayerSpec::conv(128, 66, 66, 256, 3);
    EXPECT_EQ(s.forwardOps(),
              2LL * 64 * 64 * 256 * 128 * 3 * 3);
    EXPECT_EQ(s.backwardOps(), 2 * s.forwardOps());
}

TEST(ModelZoo, TenEvaluationNetworks)
{
    const auto nets = evaluationNetworks();
    ASSERT_EQ(nets.size(), 10u);
    EXPECT_EQ(nets[0].name, "Mnist-A");
    EXPECT_EQ(nets[4].name, "AlexNet");
    EXPECT_EQ(nets[9].name, "VGG-E");
    for (const auto &net : nets)
        net.validate();
}

TEST(ModelZoo, VggDParameterCount)
{
    // VGG-16 (configuration D) famously has ~138.3M parameters.
    const NetworkSpec spec = vggD();
    EXPECT_NEAR(static_cast<double>(spec.paramCount()), 138.3e6, 0.5e6);
}

TEST(ModelZoo, VggEParameterCount)
{
    // VGG-19 (configuration E): ~143.7M parameters.
    EXPECT_NEAR(static_cast<double>(vggE().paramCount()), 143.7e6, 0.5e6);
}

TEST(ModelZoo, AlexNetParameterCount)
{
    // AlexNet with the original conv groups: ~61M parameters.
    const double params = static_cast<double>(alexNet().paramCount());
    EXPECT_NEAR(params, 61e6, 1e6);
}

TEST(LayerSpec, GroupedConvolution)
{
    const LayerSpec grouped =
        LayerSpec::conv(96, 27, 27, 256, 5, 1, 2, /*groups=*/2);
    const LayerSpec dense = LayerSpec::conv(96, 27, 27, 256, 5, 1, 2);
    // Groups halve the per-output fan-in, parameters and operations.
    EXPECT_EQ(grouped.weightRows(), 48 * 25 + 1);
    EXPECT_EQ(dense.weightRows(), 96 * 25 + 1);
    EXPECT_EQ(grouped.paramCount() - 256,
              (dense.paramCount() - 256) / 2);
    EXPECT_EQ(grouped.forwardOps(), dense.forwardOps() / 2);
    // Same output geometry either way.
    EXPECT_EQ(grouped.out_h, dense.out_h);
    EXPECT_NE(grouped.describe().find("/g2"), std::string::npos);
}

TEST(LayerSpec, AvgPoolGeometryAndOps)
{
    const LayerSpec s = LayerSpec::avgPool(16, 8, 8, 2);
    EXPECT_EQ(s.out_h, 4);
    EXPECT_EQ(s.out_c, 16);
    EXPECT_FALSE(s.usesArrays());
    EXPECT_EQ(s.paramCount(), 0);
    // (K*K additions + 1 shift) per output element (paper Eq. 2).
    EXPECT_EQ(s.forwardOps(), 4 * 4 * 16 * 5);
    EXPECT_EQ(s.describe(), "avgpool2");
}

TEST(LayerSpec, SpecFromNetworkMapsAvgPool)
{
    Rng rng(42);
    nn::Network net("avg", {2, 8, 8});
    net.add(std::make_unique<nn::ConvLayer>(2, 4, 3, 1, 1, rng));
    net.add(std::make_unique<nn::AvgPoolLayer>(2));
    net.add(std::make_unique<nn::FlattenLayer>());
    net.add(std::make_unique<nn::InnerProductLayer>(64, 4, rng));
    const NetworkSpec spec = specFromNetwork(net);
    ASSERT_EQ(spec.layers.size(), 3u);
    EXPECT_EQ(spec.layers[1].kind, SpecKind::AvgPool);
    EXPECT_EQ(spec.pipelineDepth(), 2);
}

TEST(LayerSpecDeath, GroupsMustDivideChannels)
{
    EXPECT_DEATH(LayerSpec::conv(3, 8, 8, 4, 3, 1, 0, /*groups=*/2),
                 "groups");
}

TEST(ModelZoo, VggDepthsAreCorrect)
{
    // Weight-layer counts: A=11, B=13, C=16, D=16, E=19.
    EXPECT_EQ(vggA().pipelineDepth(), 11);
    EXPECT_EQ(vggB().pipelineDepth(), 13);
    EXPECT_EQ(vggC().pipelineDepth(), 16);
    EXPECT_EQ(vggD().pipelineDepth(), 16);
    EXPECT_EQ(vggE().pipelineDepth(), 19);
}

TEST(ModelZoo, VggForwardOpsScale)
{
    // VGG-16 forward ≈ 31 GFLOP (15.5 GMACs) at 224x224.
    const double ops = static_cast<double>(vggD().forwardOps());
    EXPECT_GT(ops, 28e9);
    EXPECT_LT(ops, 34e9);
}

TEST(ModelZoo, MnistNetworksMatchTable3Reconstruction)
{
    EXPECT_EQ(mnistA().pipelineDepth(), 2);
    EXPECT_EQ(mnistB().pipelineDepth(), 3);
    EXPECT_EQ(mnistC().pipelineDepth(), 4);
    EXPECT_EQ(mnistO().pipelineDepth(), 4); // conv, conv, ip, ip
    // Mnist-0 first layer: conv5x20 on 28x28 (paper Table 3).
    const auto spec = mnistO();
    const auto &first = spec.layers[0];
    EXPECT_EQ(first.kernel, 5);
    EXPECT_EQ(first.out_c, 20);
    EXPECT_EQ(first.out_h, 24);
}

TEST(ModelZoo, NetworkByNameRoundTrip)
{
    EXPECT_EQ(networkByName("VGG-C").name, "VGG-C");
    EXPECT_EQ(networkByName("Mnist-0").pipelineDepth(), 4);
}

TEST(ModelZooDeath, UnknownNetworkIsFatal)
{
    EXPECT_EXIT(networkByName("LeNet-9000"),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST(ModelZoo, StudyNetworksBuildAndValidate)
{
    Rng rng(1);
    auto nets = studyNetworks(rng);
    ASSERT_EQ(nets.size(), 5u);
    EXPECT_EQ(nets[0].first, "M-1");
    EXPECT_EQ(nets[4].first, "C-4");
    for (auto &[name, net] : nets) {
        EXPECT_EQ(net.outputShape(), (Shape{10}));
        const NetworkSpec spec = specFromNetwork(net);
        spec.validate();
    }
}

TEST(ModelZoo, SpecFromNetworkMatchesFunctionalShapes)
{
    Rng rng(2);
    nn::Network net = buildMnist0Functional(rng);
    const NetworkSpec spec = specFromNetwork(net);
    EXPECT_EQ(spec.pipelineDepth(), 4);
    // Functional and spec parameter counts must agree.
    EXPECT_EQ(spec.paramCount(), net.parameterCount());
}

TEST(ModelZoo, ArrayLayerIndicesSkipPools)
{
    const NetworkSpec spec = mnistO();
    const auto idx = spec.arrayLayerIndices();
    ASSERT_EQ(idx.size(), 4u);
    EXPECT_EQ(idx[0], 0u); // conv
    EXPECT_EQ(idx[1], 2u); // conv (pool at 1)
}

TEST(NetworkSpecDeath, InconsistentShapesPanic)
{
    NetworkSpec spec;
    spec.name = "broken";
    spec.layers.push_back(LayerSpec::conv(1, 8, 8, 4, 3));
    spec.layers.push_back(LayerSpec::innerProduct(999, 10));
    EXPECT_DEATH(spec.validate(), "consumes");
}

} // namespace
} // namespace workloads
} // namespace pipelayer
