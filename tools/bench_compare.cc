/**
 * @file
 * Compare bench envelopes against committed baselines and fail on
 * perf regressions — the CI gate behind bench/baselines/.
 *
 * Usage: bench_compare BASELINE CURRENT [--threshold=X]
 *
 * BASELINE and CURRENT are either two BENCH_*.json envelope files or
 * two directories (every BENCH_*.json baseline needs a same-named
 * counterpart).  Only deterministic model metrics under "result" are
 * gated — names ending "_s"/"_j" and "logical_cycles"; lower is
 * better — so the gate never trips on wall-clock noise.  A current
 * value above threshold * baseline (default 2.0) is a regression.
 *
 * Exit code: 0 pass (including improvements), 1 regression,
 * 2 bad input (unreadable file, name mismatch, missing metric).
 */

#include <iostream>
#include <string>

#include "common/args.hh"
#include "tools/bench_compare_lib.hh"

int
main(int argc, char **argv)
{
    using namespace pipelayer;

    const ArgParser args(argc, argv);
    if (args.flag("help") || args.positionalCount() != 2) {
        std::cerr << "usage: bench_compare BASELINE CURRENT"
                  << " [--threshold=X]\n"
                  << "  BASELINE/CURRENT: envelope files or"
                  << " directories of BENCH_*.json\n"
                  << "  --threshold=X: fail when a watched metric"
                  << " exceeds X * baseline (default 2.0)\n";
        return args.flag("help") ? 0 : benchcmp::kError;
    }
    args.rejectUnknown({"threshold", "help"});

    return benchcmp::run(args.positional(0), args.positional(1),
                         args.number("threshold", 2.0), std::cout,
                         std::cerr);
}
