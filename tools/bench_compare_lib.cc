#include "tools/bench_compare_lib.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace pipelayer {
namespace benchcmp {

namespace fs = std::filesystem;

double
MetricDelta::ratio() const
{
    if (baseline == 0.0) {
        return current == 0.0 ? 1.0
                              : std::numeric_limits<double>::infinity();
    }
    return current / baseline;
}

bool
MetricDelta::regressed(double threshold) const
{
    if (baseline == 0.0)
        return current > 0.0;
    return current > threshold * baseline;
}

int
CompareResult::exitCode(double threshold) const
{
    if (!errors.empty())
        return kError;
    for (const auto &d : deltas) {
        if (d.regressed(threshold))
            return kRegression;
    }
    return kPass;
}

bool
isWatchedMetric(const std::string &leaf)
{
    if (leaf == "logical_cycles")
        return true;
    const auto endsWith = [&leaf](const std::string &suffix) {
        return leaf.size() >= suffix.size() &&
               leaf.compare(leaf.size() - suffix.size(), suffix.size(),
                            suffix) == 0;
    };
    return endsWith("_s") || endsWith("_j") || endsWith("_iters") ||
           endsWith("_cycles") || endsWith("_count");
}

void
flattenNumbers(const json::Value &v, const std::string &prefix,
               std::vector<std::pair<std::string, double>> *out)
{
    switch (v.kind()) {
      case json::Value::Kind::Number:
        out->emplace_back(prefix, v.asNumber());
        break;
      case json::Value::Kind::Array:
        for (size_t i = 0; i < v.size(); ++i) {
            flattenNumbers(v.at(i),
                           prefix + "[" + std::to_string(i) + "]",
                           out);
        }
        break;
      case json::Value::Kind::Object:
        for (const auto &[key, member] : v.members()) {
            flattenNumbers(member,
                           prefix.empty() ? key : prefix + "." + key,
                           out);
        }
        break;
      default:
        break; // null/bool/string carry no metrics
    }
}

namespace {

/** Final path component with any array index stripped:
 *  "rows[3].pl_time_s" -> "pl_time_s", "wall_s[0]" -> "wall_s". */
std::string
leafOf(const std::string &path)
{
    const size_t dot = path.rfind('.');
    std::string leaf =
        dot == std::string::npos ? path : path.substr(dot + 1);
    const size_t bracket = leaf.find('[');
    if (bracket != std::string::npos)
        leaf.resize(bracket);
    return leaf;
}

} // namespace

CompareResult
compareEnvelopes(const json::Value &baseline, const json::Value &current)
{
    CompareResult res;

    const json::Value *base_name = baseline.find("bench");
    const json::Value *cur_name = current.find("bench");
    if (!base_name || !base_name->isString()) {
        res.errors.push_back("baseline envelope lacks a 'bench' name");
        return res;
    }
    res.bench = base_name->asString();
    if (!cur_name || !cur_name->isString() ||
        cur_name->asString() != res.bench) {
        res.errors.push_back(
            "bench name mismatch: baseline '" + res.bench +
            "' vs current '" +
            (cur_name && cur_name->isString() ? cur_name->asString()
                                              : "<missing>") +
            "'");
        return res;
    }

    const json::Value *base_result = baseline.find("result");
    const json::Value *cur_result = current.find("result");
    if (!base_result || !cur_result) {
        res.errors.push_back("envelope lacks a 'result' member");
        return res;
    }

    std::vector<std::pair<std::string, double>> base_flat, cur_flat;
    flattenNumbers(*base_result, "", &base_flat);
    flattenNumbers(*cur_result, "", &cur_flat);

    for (const auto &[path, base_value] : base_flat) {
        if (!isWatchedMetric(leafOf(path)))
            continue;
        const auto it = std::find_if(
            cur_flat.begin(), cur_flat.end(),
            [&path = path](const auto &p) { return p.first == path; });
        if (it == cur_flat.end()) {
            res.errors.push_back("watched metric '" + path +
                                 "' missing from current result");
            continue;
        }
        res.deltas.push_back({path, base_value, it->second});
    }
    return res;
}

namespace {

bool
loadEnvelope(const std::string &path, json::Value *out,
             std::ostream &err)
{
    std::ifstream in(path);
    if (!in) {
        err << "bench_compare: cannot open " << path << "\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        *out = json::parse(buf.str());
    } catch (const json::ParseError &perr) {
        err << "bench_compare: " << path << ": " << perr.what()
            << "\n";
        return false;
    }
    return true;
}

/** Compare one baseline/current file pair; returns its exit code. */
int
comparePair(const std::string &base_path, const std::string &cur_path,
            double threshold, std::ostream &os, std::ostream &err)
{
    json::Value base, cur;
    if (!loadEnvelope(base_path, &base, err) ||
        !loadEnvelope(cur_path, &cur, err))
        return kError;

    const CompareResult res = compareEnvelopes(base, cur);
    for (const auto &e : res.errors)
        err << "bench_compare: " << base_path << ": " << e << "\n";

    os << res.bench << " (" << res.deltas.size()
       << " watched metrics, threshold " << threshold << "x):\n";
    for (const auto &d : res.deltas) {
        const char *verdict = d.regressed(threshold) ? "REGRESSED"
                              : d.improved()         ? "improved"
                                                     : "ok";
        os << "  " << std::left << std::setw(44) << d.path
           << std::right << "  " << json::Value::formatNumber(d.baseline)
           << " -> " << json::Value::formatNumber(d.current) << "  ("
           << std::setprecision(3) << d.ratio() << "x, " << verdict
           << ")\n";
    }
    return res.exitCode(threshold);
}

} // namespace

int
run(const std::string &baseline_path, const std::string &current_path,
    double threshold, std::ostream &os, std::ostream &err)
{
    if (threshold < 1.0) {
        err << "bench_compare: --threshold must be >= 1.0, got "
            << threshold << "\n";
        return kError;
    }

    const bool base_is_dir = fs::is_directory(baseline_path);
    const bool cur_is_dir = fs::is_directory(current_path);
    if (base_is_dir != cur_is_dir) {
        err << "bench_compare: " << baseline_path << " and "
            << current_path
            << " must both be files or both be directories\n";
        return kError;
    }

    const auto summarize = [&os](int code) {
        os << (code == kPass ? "bench_compare: PASS\n"
               : code == kRegression
                   ? "bench_compare: REGRESSION detected\n"
                   : "bench_compare: ERROR\n");
        return code;
    };

    if (!base_is_dir) {
        return summarize(comparePair(baseline_path, current_path,
                                     threshold, os, err));
    }

    // Directory mode: every BENCH_*.json baseline must have a
    // same-named counterpart in the current directory.
    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(baseline_path)) {
        const std::string name = entry.path().filename().string();
        if (entry.is_regular_file() &&
            name.rfind("BENCH_", 0) == 0 &&
            name.size() > 5 &&
            name.substr(name.size() - 5) == ".json")
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    if (names.empty()) {
        err << "bench_compare: no BENCH_*.json baselines in "
            << baseline_path << "\n";
        return kError;
    }

    int worst = kPass;
    for (const auto &name : names) {
        const std::string base_file =
            (fs::path(baseline_path) / name).string();
        const std::string cur_file =
            (fs::path(current_path) / name).string();
        if (!fs::is_regular_file(cur_file)) {
            err << "bench_compare: baseline " << name
                << " has no counterpart in " << current_path << "\n";
            worst = std::max(worst, static_cast<int>(kError));
            continue;
        }
        worst = std::max(
            worst, comparePair(base_file, cur_file, threshold, os, err));
    }
    return summarize(worst);
}

} // namespace benchcmp
} // namespace pipelayer
