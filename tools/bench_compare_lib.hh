/**
 * @file
 * Perf-regression comparison between bench envelopes (the
 * BENCH_<name>.json files written by bench::Runner) — the library
 * behind tools/bench_compare, factored out so the unit tests can
 * drive the comparison and assert exit codes without spawning
 * processes.
 *
 * What is gated: only the envelope's "result" subtree, and within it
 * only *watched* metrics — names ending in "_s" (modelled seconds),
 * "_j" (modelled joules) or "_iters" (deterministic iteration
 * counts, e.g. the microbenches' per-kernel `inner_iters`), plus
 * "logical_cycles".  These are all deterministic outputs of the
 * analytical model or of the kernel shapes, so a change means the
 * code changed, not that the CI machine was busy.  The "timing"
 * (wall clock) and "profile" members are never gated: they vary
 * run-to-run and machine-to-machine and would make the gate flaky.
 *
 * Lower is better for every watched metric.  A current value above
 * threshold * baseline is a regression; at or below baseline is an
 * improvement; in between passes.
 */

#ifndef PIPELAYER_TOOLS_BENCH_COMPARE_LIB_HH_
#define PIPELAYER_TOOLS_BENCH_COMPARE_LIB_HH_

#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace pipelayer {
namespace benchcmp {

/** Exit codes of the bench_compare tool (and of run()). */
enum ExitCode {
    kPass = 0,       //!< all watched metrics within threshold
    kRegression = 1, //!< at least one watched metric regressed
    kError = 2,      //!< bad input: missing file/metric, name mismatch
};

/** One watched metric's baseline/current pair. */
struct MetricDelta
{
    std::string path; //!< flattened result path ("rows[3].pl_time_s")
    double baseline = 0.0;
    double current = 0.0;

    /** current / baseline (infinity when baseline is zero). */
    double ratio() const;
    /** current > threshold * baseline (lower is better). */
    bool regressed(double threshold) const;
    /** current < baseline. */
    bool improved() const { return current < baseline; }
};

/** The outcome of comparing one envelope pair. */
struct CompareResult
{
    std::string bench;               //!< baseline envelope's name
    std::vector<MetricDelta> deltas; //!< watched metrics, in order
    std::vector<std::string> errors; //!< missing metrics, mismatches

    /** Worst exit code implied by errors/deltas at @p threshold. */
    int exitCode(double threshold) const;
};

/**
 * True when @p leaf names a watched metric: ends in "_s", "_j",
 * "_iters", "_cycles" or "_count", or equals "logical_cycles".  The
 * suffixed cycle and count metrics come from the serving subsystem
 * (p50/p95/p99 latency, shed/admitted counts) and are deterministic
 * by contract, like the modelled seconds/joules.  @p leaf is the
 * final path component (no dots; array indices already stripped).
 */
bool isWatchedMetric(const std::string &leaf);

/**
 * Flatten every numeric leaf of @p v into dotted paths appended to
 * @p out ("rows[3].pl_time_s").  Non-numeric leaves are skipped.
 */
void flattenNumbers(const json::Value &v, const std::string &prefix,
                    std::vector<std::pair<std::string, double>> *out);

/**
 * Compare two parsed envelopes.  Records an error when the bench
 * names differ, when either lacks a "result" member, or when a
 * watched baseline metric is absent from @p current.  Watched metrics
 * new in @p current are ignored (adding metrics is not a regression).
 */
CompareResult compareEnvelopes(const json::Value &baseline,
                               const json::Value &current);

/**
 * The whole tool: @p baseline_path and @p current_path are either two
 * envelope files or two directories (every BENCH_*.json in the
 * baseline directory must have a same-named counterpart in the
 * current one).  Prints a per-metric report to @p os, problems to
 * @p err, and returns the process exit code.
 */
int run(const std::string &baseline_path,
        const std::string &current_path, double threshold,
        std::ostream &os, std::ostream &err);

} // namespace benchcmp
} // namespace pipelayer

#endif // PIPELAYER_TOOLS_BENCH_COMPARE_LIB_HH_
