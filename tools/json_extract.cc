/**
 * @file
 * Prints one top-level member of a JSON document in the in-tree
 * writer's canonical form:
 *
 *   json_extract FILE MEMBER
 *
 * Written for the CI equivalence gate: a bench envelope's "result"
 * member is deterministic by contract (wall clocks live in
 * "timing"/"info"), so extracting it and byte-comparing against a
 * committed golden proves a refactor changed nothing the schedule
 * semantics can observe.  Extraction goes through parse + re-write
 * rather than text slicing, so envelope member order and whitespace
 * do not matter — only the member's value does.
 *
 * Exit code: 0 on success, 1 on a missing file, parse error or
 * missing member.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/json.hh"

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr << "usage: json_extract FILE MEMBER\n";
        return 1;
    }
    const std::string path = argv[1];
    const std::string member = argv[2];

    std::ifstream in(path);
    if (!in) {
        std::cerr << "json_extract: cannot read " << path << "\n";
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();

    pipelayer::json::Value doc;
    try {
        doc = pipelayer::json::parse(buf.str());
    } catch (const std::exception &err) {
        std::cerr << "json_extract: " << path << ": " << err.what()
                  << "\n";
        return 1;
    }

    const pipelayer::json::Value *value = doc.find(member);
    if (!value) {
        std::cerr << "json_extract: " << path << " has no top-level '"
                  << member << "' member\n";
        return 1;
    }
    value->write(std::cout, /*indent=*/1);
    std::cout << "\n";
    return 0;
}
