/**
 * @file
 * Validate machine-readable output files (BENCH_*.json envelopes and
 * Chrome trace-event files) using the in-tree JSON parser — the CI
 * smoke-bench step runs this over every emitted artifact, so a
 * malformed writer fails the build without any external tooling.
 *
 * Usage: json_lint FILE...
 *
 * Each file must parse as JSON.  Files whose top-level object has a
 * "traceEvents" member are additionally checked as Chrome traces
 * (every event carries name/ph/ts/pid/tid and non-negative
 * timestamps); files with a "bench" member are checked as bench
 * envelopes (bench/threads/result members present).
 *
 * Exit code: 0 if every file validates, 1 otherwise.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/json.hh"

namespace {

using pipelayer::json::Value;

bool
checkTrace(const std::string &path, const Value &doc)
{
    const Value *events = doc.find("traceEvents");
    if (events->size() == 0) {
        std::cerr << path << ": trace has no events\n";
        return false;
    }
    for (size_t i = 0; i < events->size(); ++i) {
        const Value &e = events->at(i);
        for (const char *key : {"name", "ph", "pid", "tid"}) {
            if (!e.find(key)) {
                std::cerr << path << ": event " << i << " lacks '"
                          << key << "'\n";
                return false;
            }
        }
        const std::string ph = e.at("ph").asString();
        if (ph == "X") {
            if (!e.find("ts") || !e.find("dur") ||
                e.at("ts").asNumber() < 0 ||
                e.at("dur").asNumber() <= 0) {
                std::cerr << path << ": event " << i
                          << " has a bad ts/dur\n";
                return false;
            }
        }
    }
    return true;
}

bool
checkEnvelope(const std::string &path, const Value &doc)
{
    for (const char *key : {"bench", "threads", "result"}) {
        if (!doc.find(key)) {
            std::cerr << path << ": bench envelope lacks '" << key
                      << "'\n";
            return false;
        }
    }
    return true;
}

bool
lintFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << path << ": cannot open\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    Value doc;
    try {
        doc = pipelayer::json::parse(buf.str());
    } catch (const pipelayer::json::ParseError &err) {
        std::cerr << path << ": " << err.what() << "\n";
        return false;
    }

    if (doc.find("traceEvents")) {
        if (!checkTrace(path, doc))
            return false;
        std::cout << path << ": OK (chrome trace, "
                  << doc.at("traceEvents").size() << " events)\n";
        return true;
    }
    if (doc.find("bench")) {
        if (!checkEnvelope(path, doc))
            return false;
        std::cout << path << ": OK (bench envelope '"
                  << doc.at("bench").asString() << "')\n";
        return true;
    }
    std::cout << path << ": OK (json)\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: json_lint FILE...\n";
        return 1;
    }
    bool ok = true;
    for (int i = 1; i < argc; ++i)
        ok = lintFile(argv[i]) && ok;
    return ok ? 0 : 1;
}
