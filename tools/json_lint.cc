/**
 * @file
 * Validate machine-readable output files (BENCH_*.json envelopes and
 * Chrome trace-event files) using the in-tree JSON parser — the CI
 * smoke-bench step runs this over every emitted artifact, so a
 * malformed writer fails the build without any external tooling.
 *
 * Usage: json_lint FILE...
 *
 * Each file must parse as JSON.  Files whose top-level object has a
 * "traceEvents" member are additionally checked as Chrome traces
 * (every event carries name/ph/ts/pid/tid and non-negative
 * timestamps); files with a "bench" member are checked as bench
 * envelopes (bench/threads/result members present, well-formed
 * "timing"/"profile" members when present, and well-formed
 * microbench "kernels" rows when the result carries them); files with a
 * "profile_version" member are checked as profiler reports
 * (common/prof.hh schema: per-site counters whose histogram counts
 * sum to the call count, plus a pool-utilization section).
 *
 * Exit code: 0 if every file validates, 1 otherwise.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/json.hh"

namespace {

using pipelayer::json::Value;

bool
checkTrace(const std::string &path, const Value &doc)
{
    const Value *events = doc.find("traceEvents");
    if (events->size() == 0) {
        std::cerr << path << ": trace has no events\n";
        return false;
    }
    for (size_t i = 0; i < events->size(); ++i) {
        const Value &e = events->at(i);
        for (const char *key : {"name", "ph", "pid", "tid"}) {
            if (!e.find(key)) {
                std::cerr << path << ": event " << i << " lacks '"
                          << key << "'\n";
                return false;
            }
        }
        const std::string ph = e.at("ph").asString();
        if (ph == "X") {
            if (!e.find("ts") || !e.find("dur") ||
                e.at("ts").asNumber() < 0 ||
                e.at("dur").asNumber() <= 0) {
                std::cerr << path << ": event " << i
                          << " has a bad ts/dur\n";
                return false;
            }
        }
    }
    return true;
}

bool
checkProfile(const std::string &path, const Value &doc)
{
    const Value *sites = doc.find("sites");
    if (!sites || !sites->isArray()) {
        std::cerr << path << ": profile lacks a 'sites' array\n";
        return false;
    }
    for (size_t i = 0; i < sites->size(); ++i) {
        const Value &s = sites->at(i);
        for (const char *key :
             {"name", "calls", "total_ns", "min_ns", "max_ns", "hist"}) {
            if (!s.find(key)) {
                std::cerr << path << ": profile site " << i
                          << " lacks '" << key << "'\n";
                return false;
            }
        }
        const Value &hist = s.at("hist");
        int64_t hist_total = 0;
        for (size_t b = 0; b < hist.size(); ++b) {
            const Value &pair = hist.at(b);
            if (!pair.isArray() || pair.size() != 2) {
                std::cerr << path << ": profile site '"
                          << s.at("name").asString()
                          << "' hist entry " << b
                          << " is not a [bucket, count] pair\n";
                return false;
            }
            hist_total += pair.at(1).asInt();
        }
        if (hist_total != s.at("calls").asInt()) {
            std::cerr << path << ": profile site '"
                      << s.at("name").asString()
                      << "' hist counts sum to " << hist_total
                      << " but calls is " << s.at("calls").asInt()
                      << "\n";
            return false;
        }
    }
    const Value *pool = doc.find("pool");
    if (!pool || !pool->isObject()) {
        std::cerr << path << ": profile lacks a 'pool' object\n";
        return false;
    }
    for (const char *key :
         {"jobs", "chunks", "queue_wait_ns", "workers"}) {
        if (!pool->find(key)) {
            std::cerr << path << ": profile pool lacks '" << key
                      << "'\n";
            return false;
        }
    }
    return true;
}

/**
 * The microbenches' per-kernel rows: every entry must carry a name,
 * a positive deterministic iteration count, a positive measured
 * ns/call and a non-negative GFLOP/s; when a reference was timed,
 * both its ns/call and the derived speedup must be present.
 */
bool
checkKernels(const std::string &path, const Value &kernels)
{
    if (!kernels.isArray() || kernels.size() == 0) {
        std::cerr << path
                  << ": result 'kernels' is not a non-empty array\n";
        return false;
    }
    for (size_t i = 0; i < kernels.size(); ++i) {
        const Value &k = kernels.at(i);
        for (const char *key :
             {"name", "inner_iters", "ns_per_call", "gflops"}) {
            if (!k.find(key)) {
                std::cerr << path << ": kernel row " << i
                          << " lacks '" << key << "'\n";
                return false;
            }
        }
        const std::string name = k.at("name").asString();
        if (k.at("inner_iters").asInt() < 1 ||
            k.at("ns_per_call").asNumber() <= 0.0 ||
            k.at("gflops").asNumber() < 0.0) {
            std::cerr << path << ": kernel '" << name
                      << "' has an out-of-range metric\n";
            return false;
        }
        const Value *ref = k.find("ref_ns_per_call");
        if (ref && (ref->asNumber() <= 0.0 ||
                    !k.find("speedup_vs_reference"))) {
            std::cerr << path << ": kernel '" << name
                      << "' has a bad reference timing\n";
            return false;
        }
    }
    return true;
}

bool
checkEnvelope(const std::string &path, const Value &doc)
{
    for (const char *key : {"bench", "threads", "result"}) {
        if (!doc.find(key)) {
            std::cerr << path << ": bench envelope lacks '" << key
                      << "'\n";
            return false;
        }
    }
    if (const Value *kernels = doc.at("result").find("kernels")) {
        if (!checkKernels(path, *kernels))
            return false;
    }
    if (const Value *timing = doc.find("timing")) {
        for (const char *key :
             {"repeats", "wall_s", "min_wall_s", "median_wall_s"}) {
            if (!timing->find(key)) {
                std::cerr << path << ": envelope timing lacks '"
                          << key << "'\n";
                return false;
            }
        }
        if (timing->at("wall_s").size() !=
            static_cast<size_t>(timing->at("repeats").asInt())) {
            std::cerr << path << ": envelope timing has "
                      << timing->at("wall_s").size()
                      << " wall_s entries for "
                      << timing->at("repeats").asInt() << " repeats\n";
            return false;
        }
    }
    if (const Value *profile = doc.find("profile")) {
        if (!checkProfile(path, *profile))
            return false;
    }
    return true;
}

bool
lintFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << path << ": cannot open\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    Value doc;
    try {
        doc = pipelayer::json::parse(buf.str());
    } catch (const pipelayer::json::ParseError &err) {
        std::cerr << path << ": " << err.what() << "\n";
        return false;
    }

    if (doc.find("traceEvents")) {
        if (!checkTrace(path, doc))
            return false;
        std::cout << path << ": OK (chrome trace, "
                  << doc.at("traceEvents").size() << " events)\n";
        return true;
    }
    if (doc.find("bench")) {
        if (!checkEnvelope(path, doc))
            return false;
        std::cout << path << ": OK (bench envelope '"
                  << doc.at("bench").asString() << "')\n";
        return true;
    }
    if (doc.find("profile_version")) {
        if (!checkProfile(path, doc))
            return false;
        std::cout << path << ": OK (profile report, "
                  << doc.at("sites").size() << " sites)\n";
        return true;
    }
    std::cout << path << ": OK (json)\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: json_lint FILE...\n";
        return 1;
    }
    bool ok = true;
    for (int i = 1; i < argc; ++i)
        ok = lintFile(argv[i]) && ok;
    return ok ? 0 : 1;
}
