/**
 * @file
 * Validate machine-readable output files (BENCH_*.json envelopes and
 * Chrome trace-event files) using the in-tree JSON parser — the CI
 * smoke-bench step runs this over every emitted artifact, so a
 * malformed writer fails the build without any external tooling.
 *
 * Usage: json_lint FILE...
 *
 * Each file must parse as JSON.  Files whose top-level object has a
 * "traceEvents" member are additionally checked as Chrome traces
 * (every event carries name/ph/ts/pid/tid and non-negative
 * timestamps); files with a "bench" member are checked as bench
 * envelopes (bench/threads/result members present, well-formed
 * "timing"/"profile" members when present, and well-formed
 * microbench "kernels" rows when the result carries them); files with a
 * "profile_version" member are checked as profiler reports
 * (common/prof.hh schema: per-site counters whose histogram counts
 * sum to the call count, plus a pool-utilization section).
 *
 * Cluster reports (docs/scaling.md) are checked when the top-level
 * object carries "cluster_version": the per-chip reports must match
 * config.num_chips, total_cycles must equal chip_cycles plus the
 * aggregation cycles, the interconnect wire bytes must reconcile with
 * the topology formula (ring: rounds * 2(C-1) * C * ceil(W/C);
 * parameter server: rounds * 2C * W), and the aggregation energy must
 * equal wire_bytes * link_energy_per_byte_j.
 *
 * Serving artifacts (docs/serving.md) are covered too: files with a
 * "job_version" member are checked against the sim::Job schema,
 * "serve_version" summaries against the pl_serve/ServingReport
 * schema (counts reconcile, percentiles are ordered, the batch
 * histogram sums to the batch count, an embedded "profile" member is
 * a well-formed profiler report), "arrival_trace_version" files
 * against the sim::ArrivalTrace schema, and files named *.ndjson as
 * newline-delimited records — completion records (one consistent
 * record per line, latency = completion - arrival), or, when the
 * first record carries "metrics_version", a metrics::Sampler stream
 * (docs/observability.md "Serving telemetry"): window cycles advance
 * by exactly the interval, counter running totals accumulate the
 * window deltas and land on the trailer totals, per-window
 * distribution counts and sums reconcile with the trailer's, every
 * percentile block is ordered, and the trailer's counter totals agree
 * with the serving stats snapshot it embeds.
 *
 * Chrome traces carrying serving telemetry get the deeper checks
 * too: nestable async "b"/"e" events must balance per (cat, id),
 * flow "s"/"f" events must pair exactly and bind inside an "X" slice
 * on their (pid, tid), and counter "C" events must carry a numeric
 * args.value.
 *
 * Exit code: 0 if every file validates, 1 otherwise.
 */

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"

namespace {

using pipelayer::json::Value;

bool
checkTrace(const std::string &path, const Value &doc)
{
    const Value *events = doc.find("traceEvents");
    if (events->size() == 0) {
        std::cerr << path << ": trace has no events\n";
        return false;
    }
    // Async span depth per (cat, id); flow start/finish counts per
    // (cat, id); X slices per (pid, tid) for flow-endpoint binding.
    std::map<std::pair<std::string, int64_t>, int64_t> async_depth;
    std::map<std::pair<std::string, int64_t>, std::pair<int64_t, int64_t>>
        flows;
    std::map<std::pair<int64_t, int64_t>,
             std::vector<std::pair<int64_t, int64_t>>>
        slices;
    std::vector<std::pair<size_t, const Value *>> flow_events;
    for (size_t i = 0; i < events->size(); ++i) {
        const Value &e = events->at(i);
        for (const char *key : {"name", "ph", "pid", "tid"}) {
            if (!e.find(key)) {
                std::cerr << path << ": event " << i << " lacks '"
                          << key << "'\n";
                return false;
            }
        }
        const std::string ph = e.at("ph").asString();
        if (ph == "X") {
            if (!e.find("ts") || !e.find("dur") ||
                e.at("ts").asNumber() < 0 ||
                e.at("dur").asNumber() <= 0) {
                std::cerr << path << ": event " << i
                          << " has a bad ts/dur\n";
                return false;
            }
            slices[{e.at("pid").asInt(), e.at("tid").asInt()}]
                .emplace_back(e.at("ts").asInt(),
                              e.at("ts").asInt() + e.at("dur").asInt());
        } else if (ph == "b" || ph == "n" || ph == "e") {
            if (!e.find("cat") || !e.find("id") || !e.find("ts")) {
                std::cerr << path << ": async event " << i
                          << " lacks cat/id/ts\n";
                return false;
            }
            const auto key = std::make_pair(e.at("cat").asString(),
                                            e.at("id").asInt());
            if (ph == "b") {
                ++async_depth[key];
            } else if (ph == "e") {
                if (--async_depth[key] < 0) {
                    std::cerr << path << ": async end without begin "
                              << "for ('" << key.first << "', id "
                              << key.second << ")\n";
                    return false;
                }
            }
        } else if (ph == "s" || ph == "f") {
            if (!e.find("cat") || !e.find("id") || !e.find("ts")) {
                std::cerr << path << ": flow event " << i
                          << " lacks cat/id/ts\n";
                return false;
            }
            const auto key = std::make_pair(e.at("cat").asString(),
                                            e.at("id").asInt());
            if (ph == "s")
                ++flows[key].first;
            else
                ++flows[key].second;
            flow_events.emplace_back(i, &e);
        } else if (ph == "C") {
            const Value *args = e.find("args");
            const Value *value =
                args && args->isObject() ? args->find("value") : nullptr;
            if (!value || !value->isNumber() ||
                e.at("ts").asNumber() < 0) {
                std::cerr << path << ": counter event " << i
                          << " lacks a numeric args.value\n";
                return false;
            }
        }
    }
    for (const auto &entry : async_depth) {
        if (entry.second != 0) {
            std::cerr << path << ": async span ('" << entry.first.first
                      << "', id " << entry.first.second << ") left "
                      << entry.second << " begin(s) unmatched\n";
            return false;
        }
    }
    for (const auto &entry : flows) {
        if (entry.second.first != 1 || entry.second.second != 1) {
            std::cerr << path << ": flow ('" << entry.first.first
                      << "', id " << entry.first.second << ") has "
                      << entry.second.first << " start(s) and "
                      << entry.second.second << " finish(es)\n";
            return false;
        }
    }
    for (const auto &fe : flow_events) {
        const Value &e = *fe.second;
        const auto track = std::make_pair(e.at("pid").asInt(),
                                          e.at("tid").asInt());
        const int64_t ts = e.at("ts").asInt();
        bool enclosed = false;
        const auto it = slices.find(track);
        if (it != slices.end()) {
            for (const auto &span : it->second) {
                if (span.first <= ts && ts < span.second) {
                    enclosed = true;
                    break;
                }
            }
        }
        if (!enclosed) {
            std::cerr << path << ": flow event " << fe.first
                      << " at ts " << ts
                      << " has no enclosing slice on pid/tid "
                      << track.first << "/" << track.second << "\n";
            return false;
        }
    }
    return true;
}

bool
checkProfile(const std::string &path, const Value &doc)
{
    const Value *sites = doc.find("sites");
    if (!sites || !sites->isArray()) {
        std::cerr << path << ": profile lacks a 'sites' array\n";
        return false;
    }
    for (size_t i = 0; i < sites->size(); ++i) {
        const Value &s = sites->at(i);
        for (const char *key :
             {"name", "calls", "total_ns", "min_ns", "max_ns", "hist"}) {
            if (!s.find(key)) {
                std::cerr << path << ": profile site " << i
                          << " lacks '" << key << "'\n";
                return false;
            }
        }
        const Value &hist = s.at("hist");
        int64_t hist_total = 0;
        for (size_t b = 0; b < hist.size(); ++b) {
            const Value &pair = hist.at(b);
            if (!pair.isArray() || pair.size() != 2) {
                std::cerr << path << ": profile site '"
                          << s.at("name").asString()
                          << "' hist entry " << b
                          << " is not a [bucket, count] pair\n";
                return false;
            }
            hist_total += pair.at(1).asInt();
        }
        if (hist_total != s.at("calls").asInt()) {
            std::cerr << path << ": profile site '"
                      << s.at("name").asString()
                      << "' hist counts sum to " << hist_total
                      << " but calls is " << s.at("calls").asInt()
                      << "\n";
            return false;
        }
    }
    const Value *pool = doc.find("pool");
    if (!pool || !pool->isObject()) {
        std::cerr << path << ": profile lacks a 'pool' object\n";
        return false;
    }
    for (const char *key :
         {"jobs", "chunks", "queue_wait_ns", "workers"}) {
        if (!pool->find(key)) {
            std::cerr << path << ": profile pool lacks '" << key
                      << "'\n";
            return false;
        }
    }
    return true;
}

/**
 * The microbenches' per-kernel rows: every entry must carry a name,
 * a positive deterministic iteration count, a positive measured
 * ns/call and a non-negative GFLOP/s; when a reference was timed,
 * both its ns/call and the derived speedup must be present.
 */
bool
checkKernels(const std::string &path, const Value &kernels)
{
    if (!kernels.isArray() || kernels.size() == 0) {
        std::cerr << path
                  << ": result 'kernels' is not a non-empty array\n";
        return false;
    }
    for (size_t i = 0; i < kernels.size(); ++i) {
        const Value &k = kernels.at(i);
        for (const char *key :
             {"name", "inner_iters", "ns_per_call", "gflops"}) {
            if (!k.find(key)) {
                std::cerr << path << ": kernel row " << i
                          << " lacks '" << key << "'\n";
                return false;
            }
        }
        const std::string name = k.at("name").asString();
        if (k.at("inner_iters").asInt() < 1 ||
            k.at("ns_per_call").asNumber() <= 0.0 ||
            k.at("gflops").asNumber() < 0.0) {
            std::cerr << path << ": kernel '" << name
                      << "' has an out-of-range metric\n";
            return false;
        }
        const Value *ref = k.find("ref_ns_per_call");
        if (ref && (ref->asNumber() <= 0.0 ||
                    !k.find("speedup_vs_reference"))) {
            std::cerr << path << ": kernel '" << name
                      << "' has a bad reference timing\n";
            return false;
        }
    }
    return true;
}

bool
checkEnvelope(const std::string &path, const Value &doc)
{
    for (const char *key : {"bench", "threads", "result"}) {
        if (!doc.find(key)) {
            std::cerr << path << ": bench envelope lacks '" << key
                      << "'\n";
            return false;
        }
    }
    // Optional dispatched-SIMD-target member (bench/bench_util.cc).
    if (const Value *isa = doc.find("isa")) {
        const std::string name = isa->isString() ? isa->asString() : "";
        if (name != "scalar" && name != "avx2" && name != "avx512" &&
            name != "neon") {
            std::cerr << path << ": envelope 'isa' is not one of "
                      << "scalar|avx2|avx512|neon\n";
            return false;
        }
    }
    if (const Value *kernels = doc.at("result").find("kernels")) {
        if (!checkKernels(path, *kernels))
            return false;
    }
    if (const Value *timing = doc.find("timing")) {
        for (const char *key :
             {"repeats", "wall_s", "min_wall_s", "median_wall_s"}) {
            if (!timing->find(key)) {
                std::cerr << path << ": envelope timing lacks '"
                          << key << "'\n";
                return false;
            }
        }
        if (timing->at("wall_s").size() !=
            static_cast<size_t>(timing->at("repeats").asInt())) {
            std::cerr << path << ": envelope timing has "
                      << timing->at("wall_s").size()
                      << " wall_s entries for "
                      << timing->at("repeats").asInt() << " repeats\n";
            return false;
        }
    }
    if (const Value *profile = doc.find("profile")) {
        if (!checkProfile(path, *profile))
            return false;
    }
    return true;
}

/**
 * sim::ClusterReport schema (docs/scaling.md): per-chip stat groups
 * and interconnect bytes/energy that reconcile with the topology
 * formula in arch::aggregationRoundCost.
 */
bool
checkCluster(const std::string &path, const Value &doc)
{
    for (const char *key : {"network", "config", "chip_cycles",
                            "aggregation", "total_cycles", "chips"}) {
        if (!doc.find(key)) {
            std::cerr << path << ": cluster report lacks '" << key
                      << "'\n";
            return false;
        }
    }
    const Value &cfg = doc.at("config");
    const Value *num_chips = cfg.find("num_chips");
    const Value *interconnect = cfg.find("interconnect");
    if (!num_chips || num_chips->asInt() < 1 || !interconnect) {
        std::cerr << path << ": cluster config needs num_chips >= 1 "
                  << "and an interconnect\n";
        return false;
    }
    const int64_t chips = num_chips->asInt();
    const Value *topology = interconnect->find("topology");
    const Value *energy_per_byte =
        interconnect->find("link_energy_per_byte_j");
    if (!topology || !topology->isString() || !energy_per_byte ||
        !energy_per_byte->isNumber()) {
        std::cerr << path << ": cluster interconnect needs a "
                  << "'topology' string and a numeric "
                  << "'link_energy_per_byte_j'\n";
        return false;
    }
    const std::string topo = topology->asString();
    if (topo != "ring" && topo != "parameter_server") {
        std::cerr << path << ": unknown interconnect topology '"
                  << topo << "'\n";
        return false;
    }

    // One full SimReport per chip, in chip order.
    const Value &chip_reports = doc.at("chips");
    if (!chip_reports.isArray() ||
        chip_reports.size() != static_cast<size_t>(chips)) {
        std::cerr << path << ": cluster has " << chip_reports.size()
                  << " chip reports for num_chips=" << chips << "\n";
        return false;
    }
    int64_t max_chip_cycles = 0;
    for (size_t c = 0; c < chip_reports.size(); ++c) {
        const Value &chip = chip_reports.at(c);
        for (const char *key :
             {"network", "config", "logical_cycles", "energy",
              "energy_per_image_j"}) {
            if (!chip.find(key)) {
                std::cerr << path << ": chip report " << c
                          << " lacks '" << key << "'\n";
                return false;
            }
        }
        if (chip.at("logical_cycles").asInt() > max_chip_cycles)
            max_chip_cycles = chip.at("logical_cycles").asInt();
    }
    if (doc.at("chip_cycles").asInt() != max_chip_cycles) {
        std::cerr << path << ": chip_cycles "
                  << doc.at("chip_cycles").asInt()
                  << " is not the per-chip maximum ("
                  << max_chip_cycles << ")\n";
        return false;
    }

    const Value &agg = doc.at("aggregation");
    for (const char *key : {"rounds", "payload_bytes", "wire_bytes",
                            "time_s", "energy_j", "cycles"}) {
        if (!agg.find(key)) {
            std::cerr << path << ": cluster aggregation lacks '" << key
                      << "'\n";
            return false;
        }
    }
    if (doc.at("total_cycles").asInt() !=
        doc.at("chip_cycles").asInt() + agg.at("cycles").asInt()) {
        std::cerr << path << ": total_cycles "
                  << doc.at("total_cycles").asInt()
                  << " != chip_cycles + aggregation cycles\n";
        return false;
    }

    // Wire bytes follow the topology formula exactly: integer
    // arithmetic in arch::aggregationRoundCost, re-derived here.
    const int64_t rounds = agg.at("rounds").asInt();
    const int64_t payload = agg.at("payload_bytes").asInt();
    int64_t round_wire = 0;
    if (chips > 1 && payload > 0) {
        if (topo == "ring") {
            const int64_t chunk = (payload + chips - 1) / chips;
            round_wire = 2 * (chips - 1) * chips * chunk;
        } else {
            round_wire = 2 * chips * payload;
        }
    }
    if (agg.at("wire_bytes").asInt() != rounds * round_wire) {
        std::cerr << path << ": aggregation wire_bytes "
                  << agg.at("wire_bytes").asInt()
                  << " does not match the " << topo << " formula ("
                  << rounds * round_wire << " for " << rounds
                  << " rounds of " << payload << " payload bytes on "
                  << chips << " chips)\n";
        return false;
    }
    // Energy is wire bytes times the per-byte link energy; allow for
    // the producer multiplying per round instead of over the total.
    const double want_energy =
        static_cast<double>(agg.at("wire_bytes").asInt()) *
        energy_per_byte->asNumber();
    const double got_energy = agg.at("energy_j").asNumber();
    const double tol = 1e-9 * (want_energy > 1.0 ? want_energy : 1.0);
    if (got_energy < want_energy - tol ||
        got_energy > want_energy + tol) {
        std::cerr << path << ": aggregation energy_j " << got_energy
                  << " != wire_bytes * link_energy_per_byte_j ("
                  << want_energy << ")\n";
        return false;
    }
    return true;
}

/** sim::Job description schema (src/sim/job.hh). */
bool
checkJob(const std::string &path, const Value &doc)
{
    const Value *phase = doc.find("phase");
    if (!phase || !phase->isString() ||
        (phase->asString() != "testing" &&
         phase->asString() != "training")) {
        std::cerr << path
                  << ": job 'phase' must be 'testing' or 'training'\n";
        return false;
    }
    const Value *arrivals = doc.find("arrivals");
    if (!doc.find("num_images") && !arrivals) {
        std::cerr << path
                  << ": job needs 'num_images' or an 'arrivals' trace\n";
        return false;
    }
    for (const char *key : {"batch_size", "num_images"}) {
        const Value *v = doc.find(key);
        if (v && (!v->isNumber() || v->asInt() < 1)) {
            std::cerr << path << ": job '" << key
                      << "' must be a positive number\n";
            return false;
        }
    }
    if (arrivals && !arrivals->find("kind")) {
        std::cerr << path << ": job 'arrivals' lacks a 'kind'\n";
        return false;
    }
    return true;
}

/** sim::ArrivalTrace description schema (src/sim/arrival.hh). */
bool
checkArrivalTrace(const std::string &path, const Value &doc)
{
    const Value *kind = doc.find("kind");
    if (!kind || !kind->isString()) {
        std::cerr << path << ": arrival trace lacks a 'kind' string\n";
        return false;
    }
    const std::string &name = kind->asString();
    if (name != "fixed" && name != "poisson" && name != "uniform" &&
        name != "bursty" && name != "replay") {
        std::cerr << path << ": unknown arrival-trace kind '" << name
                  << "'\n";
        return false;
    }
    if (name == "replay") {
        const Value *cycles = doc.find("cycles");
        if (!cycles || !cycles->isArray()) {
            std::cerr << path
                      << ": replay trace lacks a 'cycles' array\n";
            return false;
        }
        int64_t prev = 0;
        for (size_t i = 0; i < cycles->size(); ++i) {
            const int64_t c = cycles->at(i).asInt();
            if (c < 0 || c < prev) {
                std::cerr << path << ": replay cycle " << i
                          << " is negative or decreasing\n";
                return false;
            }
            prev = c;
        }
    } else if (!doc.find("num_requests")) {
        std::cerr << path << ": generated trace lacks 'num_requests'\n";
        return false;
    }
    return true;
}

/** pl_serve summary schema (sim::ServingReport::toJson). */
bool
checkServeSummary(const std::string &path, const Value &doc)
{
    for (const char *key :
         {"network", "depth", "config", "arrival_count",
          "admitted_count", "shed_count", "batch_count",
          "batch_size_hist", "p50_latency_cycles", "p95_latency_cycles",
          "p99_latency_cycles", "max_latency_cycles", "schedule",
          "execution"}) {
        if (!doc.find(key)) {
            std::cerr << path << ": serve summary lacks '" << key
                      << "'\n";
            return false;
        }
    }
    const int64_t arrivals = doc.at("arrival_count").asInt();
    const int64_t admitted = doc.at("admitted_count").asInt();
    const int64_t shed = doc.at("shed_count").asInt();
    if (admitted + shed != arrivals) {
        std::cerr << path << ": serve summary counts do not reconcile ("
                  << admitted << " admitted + " << shed << " shed != "
                  << arrivals << " arrivals)\n";
        return false;
    }
    const int64_t p50 = doc.at("p50_latency_cycles").asInt();
    const int64_t p95 = doc.at("p95_latency_cycles").asInt();
    const int64_t p99 = doc.at("p99_latency_cycles").asInt();
    const int64_t max = doc.at("max_latency_cycles").asInt();
    if (p50 > p95 || p95 > p99 || p99 > max) {
        std::cerr << path << ": serve summary percentiles out of order ("
                  << p50 << "/" << p95 << "/" << p99 << "/" << max
                  << ")\n";
        return false;
    }
    const Value &hist = doc.at("batch_size_hist");
    const int64_t max_batch = doc.at("config").at("max_batch").asInt();
    int64_t hist_total = 0;
    int64_t hist_images = 0;
    for (size_t i = 0; i < hist.size(); ++i) {
        const Value &pair = hist.at(i);
        if (!pair.isArray() || pair.size() != 2) {
            std::cerr << path << ": batch_size_hist entry " << i
                      << " is not a [size, count] pair\n";
            return false;
        }
        const int64_t size = pair.at(0).asInt();
        if (size < 1 || size > max_batch) {
            std::cerr << path << ": batch size " << size
                      << " outside [1, max_batch=" << max_batch
                      << "]\n";
            return false;
        }
        hist_total += pair.at(1).asInt();
        hist_images += size * pair.at(1).asInt();
    }
    if (hist_total != doc.at("batch_count").asInt()) {
        std::cerr << path << ": batch_size_hist counts sum to "
                  << hist_total << " but batch_count is "
                  << doc.at("batch_count").asInt() << "\n";
        return false;
    }
    if (hist_images != admitted) {
        std::cerr << path << ": batch_size_hist covers " << hist_images
                  << " requests but admitted_count is " << admitted
                  << "\n";
        return false;
    }
    // Under PL_PROFILE=1 pl_serve embeds the host profile; it must be
    // a well-formed prof::Report wherever it appears.
    if (const Value *profile = doc.find("profile")) {
        if (!checkProfile(path, *profile))
            return false;
    }
    return true;
}

/** One distribution block {"count","min","max","sum","p50",...}. */
bool
checkDistribution(const std::string &path, const std::string &where,
                  const Value &d)
{
    for (const char *key :
         {"count", "min", "max", "sum", "p50", "p95", "p99"}) {
        if (!d.find(key) || !d.at(key).isNumber()) {
            std::cerr << path << ": " << where << " lacks numeric '"
                      << key << "'\n";
            return false;
        }
    }
    if (d.at("count").asInt() < 0) {
        std::cerr << path << ": " << where << " has a negative count\n";
        return false;
    }
    if (d.at("count").asInt() > 0) {
        const int64_t min = d.at("min").asInt();
        const int64_t p50 = d.at("p50").asInt();
        const int64_t p95 = d.at("p95").asInt();
        const int64_t p99 = d.at("p99").asInt();
        const int64_t max = d.at("max").asInt();
        if (min > p50 || p50 > p95 || p95 > p99 || p99 > max) {
            std::cerr << path << ": " << where
                      << " percentiles out of order (" << min << "/"
                      << p50 << "/" << p95 << "/" << p99 << "/" << max
                      << ")\n";
            return false;
        }
    }
    return true;
}

/**
 * A metrics::Sampler NDJSON stream (pl_serve --metrics): window
 * records then one trailer, cycles advancing by exactly the interval,
 * counter/distribution windows reconciling with the trailer totals
 * and with the serving stats snapshot the trailer embeds.
 */
bool
checkMetricsStream(const std::string &path,
                   const std::vector<Value> &records)
{
    if (records.size() < 1) {
        std::cerr << path << ": metrics stream is empty\n";
        return false;
    }
    const Value &trailer = records.back();
    const Value *flag = trailer.find("trailer");
    if (!flag || !flag->asBool()) {
        std::cerr << path << ": metrics stream lacks a final trailer "
                  << "record\n";
        return false;
    }
    for (const char *key : {"interval", "windows", "end_cycle",
                            "totals", "distributions"}) {
        if (!trailer.find(key)) {
            std::cerr << path << ": metrics trailer lacks '" << key
                      << "'\n";
            return false;
        }
    }
    const int64_t interval = trailer.at("interval").asInt();
    if (interval < 1) {
        std::cerr << path << ": metrics interval " << interval
                  << " is not positive\n";
        return false;
    }
    const size_t windows = records.size() - 1;
    if (trailer.at("windows").asInt() !=
        static_cast<int64_t>(windows)) {
        std::cerr << path << ": metrics trailer claims "
                  << trailer.at("windows").asInt() << " windows for "
                  << windows << " window records\n";
        return false;
    }

    std::map<std::string, int64_t> counter_sum;
    std::map<std::string, int64_t> dist_count;
    std::map<std::string, int64_t> dist_sum;
    for (size_t w = 0; w < windows; ++w) {
        const Value &rec = records[w];
        if (rec.find("trailer")) {
            std::cerr << path << ": metrics record " << w
                      << " is a trailer before the last line\n";
            return false;
        }
        for (const char *key :
             {"cycle", "end_cycle", "interval", "counters", "gauges",
              "distributions"}) {
            if (!rec.find(key)) {
                std::cerr << path << ": metrics window " << w
                          << " lacks '" << key << "'\n";
                return false;
            }
        }
        // Gapless windows: record w starts exactly at w * interval.
        const int64_t cycle = rec.at("cycle").asInt();
        if (cycle != static_cast<int64_t>(w) * interval ||
            rec.at("interval").asInt() != interval) {
            std::cerr << path << ": metrics window " << w
                      << " starts at cycle " << cycle << ", expected "
                      << static_cast<int64_t>(w) * interval << "\n";
            return false;
        }
        if (rec.at("end_cycle").asInt() <= cycle) {
            std::cerr << path << ": metrics window " << w
                      << " is empty (end_cycle <= cycle)\n";
            return false;
        }
        for (const auto &member : rec.at("counters").members()) {
            const Value *delta = member.second.find("delta");
            const Value *total = member.second.find("total");
            if (!delta || !total || !delta->isNumber() ||
                !total->isNumber()) {
                std::cerr << path << ": counter '" << member.first
                          << "' in window " << w
                          << " lacks numeric delta/total\n";
                return false;
            }
            counter_sum[member.first] += delta->asInt();
            if (total->asInt() != counter_sum[member.first]) {
                std::cerr << path << ": counter '" << member.first
                          << "' running total " << total->asInt()
                          << " in window " << w
                          << " does not accumulate its deltas ("
                          << counter_sum[member.first] << ")\n";
                return false;
            }
        }
        for (const auto &member : rec.at("distributions").members()) {
            if (!checkDistribution(path,
                                   "distribution '" + member.first +
                                       "' in window " +
                                       std::to_string(w),
                                   member.second)) {
                return false;
            }
            dist_count[member.first] +=
                member.second.at("count").asInt();
            dist_sum[member.first] += member.second.at("sum").asInt();
        }
    }

    for (const auto &member : trailer.at("totals").members()) {
        if (member.second.asInt() != counter_sum[member.first]) {
            std::cerr << path << ": trailer total for '"
                      << member.first << "' is "
                      << member.second.asInt()
                      << " but the window deltas sum to "
                      << counter_sum[member.first] << "\n";
            return false;
        }
    }
    for (const auto &member : trailer.at("distributions").members()) {
        if (!checkDistribution(path,
                               "trailer distribution '" +
                                   member.first + "'",
                               member.second)) {
            return false;
        }
        if (member.second.at("count").asInt() !=
                dist_count[member.first] ||
            member.second.at("sum").asInt() != dist_sum[member.first]) {
            std::cerr << path << ": trailer distribution '"
                      << member.first
                      << "' does not reconcile with its windows ("
                      << member.second.at("count").asInt() << "/"
                      << dist_count[member.first] << " observations, "
                      << member.second.at("sum").asInt() << "/"
                      << dist_sum[member.first] << " summed)\n";
            return false;
        }
    }

    // The trailer's serving stats snapshot (ServingReport::addStats)
    // counts the same events the counter channels do; a mismatch
    // means the producer double-fed or dropped events.
    if (const Value *stats = trailer.find("stats")) {
        const std::pair<const char *, const char *> pairs[] = {
            {"serving.arrivals", "serving.arrival_count"},
            {"serving.admitted", "serving.admitted_count"},
            {"serving.shed", "serving.shed_count"},
            {"serving.launches", "serving.batch_count"},
        };
        for (const auto &pair : pairs) {
            const Value *total = trailer.at("totals").find(pair.first);
            const Value *stat = stats->find(pair.second);
            if (total && stat && total->asInt() != stat->asInt()) {
                std::cerr << path << ": trailer total '" << pair.first
                          << "' (" << total->asInt()
                          << ") disagrees with stats snapshot '"
                          << pair.second << "' (" << stat->asInt()
                          << ")\n";
                return false;
            }
        }
    }
    return true;
}

/** One pl_serve completion record (one *.ndjson line). */
bool
checkCompletionRecord(const std::string &path, size_t lineno,
                      const Value &rec)
{
    for (const char *key : {"id", "arrival_cycle", "admitted"}) {
        if (!rec.find(key)) {
            std::cerr << path << ": line " << lineno << " lacks '"
                      << key << "'\n";
            return false;
        }
    }
    if (!rec.at("admitted").asBool())
        return true;
    for (const char *key : {"entry_cycle", "completion_cycle",
                            "latency_cycles", "batch_id", "batch_size"}) {
        if (!rec.find(key)) {
            std::cerr << path << ": line " << lineno
                      << " admitted record lacks '" << key << "'\n";
            return false;
        }
    }
    const int64_t arrival = rec.at("arrival_cycle").asInt();
    const int64_t entry = rec.at("entry_cycle").asInt();
    const int64_t completion = rec.at("completion_cycle").asInt();
    if (entry < arrival || completion <= entry ||
        rec.at("latency_cycles").asInt() != completion - arrival ||
        rec.at("batch_size").asInt() < 1) {
        std::cerr << path << ": line " << lineno
                  << " record cycles are inconsistent\n";
        return false;
    }
    return true;
}

/**
 * Newline-delimited records: a metrics::Sampler stream when the first
 * record carries "metrics_version" (pl_serve --metrics), completion
 * records otherwise (pl_serve --completions).
 */
bool
lintNdjson(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << path << ": cannot open\n";
        return false;
    }
    std::string line;
    size_t lineno = 0;
    std::vector<Value> records;
    std::vector<size_t> linenos;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        Value rec;
        try {
            rec = pipelayer::json::parse(line);
        } catch (const pipelayer::json::ParseError &err) {
            std::cerr << path << ": line " << lineno << ": "
                      << err.what() << "\n";
            return false;
        }
        records.push_back(std::move(rec));
        linenos.push_back(lineno);
    }
    if (!records.empty() && records.front().isObject() &&
        records.front().find("metrics_version")) {
        if (!checkMetricsStream(path, records))
            return false;
        std::cout << path << ": OK (metrics stream, "
                  << records.size() - 1 << " windows)\n";
        return true;
    }
    for (size_t i = 0; i < records.size(); ++i) {
        if (!checkCompletionRecord(path, linenos[i], records[i]))
            return false;
    }
    std::cout << path << ": OK (ndjson, " << records.size()
              << " records)\n";
    return true;
}

bool
lintFile(const std::string &path)
{
    const std::string ndjson_ext = ".ndjson";
    if (path.size() > ndjson_ext.size() &&
        path.compare(path.size() - ndjson_ext.size(), ndjson_ext.size(),
                     ndjson_ext) == 0) {
        return lintNdjson(path);
    }
    std::ifstream in(path);
    if (!in) {
        std::cerr << path << ": cannot open\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    Value doc;
    try {
        doc = pipelayer::json::parse(buf.str());
    } catch (const pipelayer::json::ParseError &err) {
        std::cerr << path << ": " << err.what() << "\n";
        return false;
    }

    if (doc.find("traceEvents")) {
        if (!checkTrace(path, doc))
            return false;
        std::cout << path << ": OK (chrome trace, "
                  << doc.at("traceEvents").size() << " events)\n";
        return true;
    }
    if (doc.find("bench")) {
        if (!checkEnvelope(path, doc))
            return false;
        std::cout << path << ": OK (bench envelope '"
                  << doc.at("bench").asString() << "')\n";
        return true;
    }
    if (doc.find("profile_version")) {
        if (!checkProfile(path, doc))
            return false;
        std::cout << path << ": OK (profile report, "
                  << doc.at("sites").size() << " sites)\n";
        return true;
    }
    if (doc.find("cluster_version")) {
        if (!checkCluster(path, doc))
            return false;
        std::cout << path << ": OK (cluster report, "
                  << doc.at("chips").size() << " chips)\n";
        return true;
    }
    if (doc.find("job_version")) {
        if (!checkJob(path, doc))
            return false;
        std::cout << path << ": OK (job description)\n";
        return true;
    }
    if (doc.find("serve_version")) {
        if (!checkServeSummary(path, doc))
            return false;
        std::cout << path << ": OK (serve summary, "
                  << doc.at("arrival_count").asInt() << " requests)\n";
        return true;
    }
    if (doc.find("arrival_trace_version")) {
        if (!checkArrivalTrace(path, doc))
            return false;
        std::cout << path << ": OK (arrival trace)\n";
        return true;
    }
    std::cout << path << ": OK (json)\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: json_lint FILE...\n";
        return 1;
    }
    bool ok = true;
    for (int i = 1; i < argc; ++i)
        ok = lintFile(argv[i]) && ok;
    return ok ? 0 : 1;
}
