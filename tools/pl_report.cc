/**
 * @file
 * pl_report: render and diff serving telemetry
 * (docs/observability.md, "Serving telemetry").
 *
 * Report mode — one metrics stream (pl_serve --metrics= output):
 *
 *   pl_report --metrics=M.ndjson [--summary=S.json]
 *
 * prints the latency/throughput-over-time table, one row per sampling
 * window plus the whole-run totals.
 *
 * Diff mode — two streams, baseline first:
 *
 *   pl_report --baseline=OLD.ndjson --current=NEW.ndjson
 *             [--baseline-summary=OLD.json --current-summary=NEW.json]
 *             [--threshold=1.5] [--json=DIFF.json]
 *
 * compares the watched serving series window by window (latency
 * percentiles, shed and completion deltas, queue depth; summaries by
 * the bench_compare watched-metric rule) and prints the regressed
 * windows.  Exit status mirrors bench_compare: 0 pass, 1 at least
 * one regressed window, 2 bad input.
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "tools/pl_report_lib.hh"

int
main(int argc, char **argv)
{
    using namespace pipelayer;
    ArgParser args(argc, argv);
    if (args.flag("help")) {
        std::cout
            << "usage: pl_report --metrics=FILE [--summary=FILE]\n"
               "       pl_report --baseline=FILE --current=FILE\n"
               "                 [--baseline-summary=FILE "
               "--current-summary=FILE]\n"
               "                 [--threshold=X] [--json=FILE]\n";
        return report::kPass;
    }
    args.rejectUnknown({"metrics", "summary", "baseline", "current",
                        "baseline-summary", "current-summary",
                        "threshold", "json", "help"});

    std::vector<std::string> metrics;
    std::vector<std::string> summaries;
    const std::string single = args.str("metrics");
    const std::string baseline = args.str("baseline");
    const std::string current = args.str("current");
    if (!single.empty()) {
        if (!baseline.empty() || !current.empty()) {
            std::cerr << "pl_report: --metrics excludes "
                         "--baseline/--current\n";
            return report::kError;
        }
        metrics.push_back(single);
        const std::string summary = args.str("summary");
        if (!summary.empty())
            summaries.push_back(summary);
    } else if (!baseline.empty() && !current.empty()) {
        metrics.push_back(baseline);
        metrics.push_back(current);
        const std::string bs = args.str("baseline-summary");
        const std::string cs = args.str("current-summary");
        if (bs.empty() != cs.empty()) {
            std::cerr << "pl_report: give both --baseline-summary "
                         "and --current-summary or neither\n";
            return report::kError;
        }
        if (!bs.empty()) {
            summaries.push_back(bs);
            summaries.push_back(cs);
        }
    } else {
        std::cerr << "pl_report: need --metrics=FILE or "
                     "--baseline=FILE --current=FILE "
                     "(--help for usage)\n";
        return report::kError;
    }

    const double threshold = args.number("threshold", 1.5);
    return report::run(metrics, summaries, threshold,
                       args.str("json"), std::cout, std::cerr);
}
