#include "tools/pl_report_lib.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "tools/bench_compare_lib.hh"

namespace pipelayer {
namespace report {

namespace {

/** Integer field of an object record, or @p fallback when absent. */
int64_t
intField(const json::Value &rec, const std::string &key,
         int64_t fallback)
{
    const json::Value *v = rec.isObject() ? rec.find(key) : nullptr;
    return v && v->isNumber() ? v->asInt() : fallback;
}

/**
 * The watched window series, probed against both records by explicit
 * segment lookup (channel names contain dots, so a dotted-path split
 * cannot recover them; the schema is ours, so spell the segments).
 */
struct WatchedSeries
{
    const char *group;   //!< "counters", "gauges", "distributions"
    const char *channel; //!< channel name within the group
    const char *leaf;    //!< nested leaf, or nullptr for the value
    bool lower_is_better;
};

constexpr WatchedSeries kWatched[] = {
    {"distributions", "serving.latency_cycles", "p50", true},
    {"distributions", "serving.latency_cycles", "p95", true},
    {"distributions", "serving.latency_cycles", "p99", true},
    {"distributions", "serving.latency_cycles", "max", true},
    {"distributions", "serving.queue_wait_cycles", "p95", true},
    {"counters", "serving.shed", "delta", true},
    {"gauges", "serving.queue_depth", nullptr, true},
    {"counters", "serving.completions", "delta", false},
};

/** The series' numeric leaf in @p rec, or nullptr when absent. */
const json::Value *
seriesLeaf(const json::Value &rec, const WatchedSeries &series)
{
    const json::Value *group =
        rec.isObject() ? rec.find(series.group) : nullptr;
    const json::Value *channel =
        group && group->isObject() ? group->find(series.channel)
                                   : nullptr;
    if (!channel)
        return nullptr;
    const json::Value *leaf =
        series.leaf
            ? (channel->isObject() ? channel->find(series.leaf)
                                   : nullptr)
            : channel;
    return leaf && leaf->isNumber() ? leaf : nullptr;
}

std::string
seriesPath(const WatchedSeries &series)
{
    std::string path =
        std::string(series.group) + "." + series.channel;
    if (series.leaf)
        path += std::string(".") + series.leaf;
    return path;
}

/** Table cell for an optional numeric leaf. */
std::string
cell(const json::Value *leaf)
{
    if (!leaf)
        return "-";
    const double v = leaf->asNumber();
    if (v == std::floor(v) && std::abs(v) < 1e15)
        return std::to_string(leaf->asInt());
    return Table::num(v);
}

} // namespace

int64_t
MetricsStream::interval() const
{
    return intField(trailer, "interval", 0);
}

MetricsStream
parseMetrics(const std::string &text)
{
    MetricsStream stream;
    std::istringstream in(text);
    std::string line;
    size_t lineno = 0;
    bool saw_trailer = false;
    int64_t prev_cycle = -1;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        json::Value rec;
        try {
            rec = json::parse(line);
        } catch (const json::ParseError &err) {
            throw ConfigError("metrics line " + std::to_string(lineno) +
                              ": " + err.what());
        }
        if (!rec.isObject() || intField(rec, "metrics_version", 0) != 1) {
            throw ConfigError(
                "metrics line " + std::to_string(lineno) +
                ": expected {\"metrics_version\": 1, ...}");
        }
        if (saw_trailer) {
            throw ConfigError("metrics line " + std::to_string(lineno) +
                              ": record after the trailer");
        }
        const json::Value *trailer_flag = rec.find("trailer");
        if (trailer_flag && trailer_flag->isBool() &&
            trailer_flag->asBool()) {
            stream.trailer = std::move(rec);
            saw_trailer = true;
            continue;
        }
        const int64_t cycle = intField(rec, "cycle", -1);
        if (cycle <= prev_cycle) {
            throw ConfigError(
                "metrics line " + std::to_string(lineno) +
                ": window cycle " + std::to_string(cycle) +
                " not after " + std::to_string(prev_cycle));
        }
        prev_cycle = cycle;
        stream.windows.push_back(std::move(rec));
    }
    if (!saw_trailer)
        throw ConfigError("metrics stream has no trailer record");
    const int64_t windows = intField(stream.trailer, "windows", -1);
    if (windows != static_cast<int64_t>(stream.windows.size())) {
        throw ConfigError(
            "metrics trailer claims " + std::to_string(windows) +
            " windows, stream has " +
            std::to_string(stream.windows.size()));
    }
    return stream;
}

MetricsStream
loadMetrics(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError("cannot open metrics file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return parseMetrics(text.str());
    } catch (const ConfigError &err) {
        throw ConfigError(path + ": " + err.what());
    }
}

std::string
renderTable(const MetricsStream &stream)
{
    Table table({"cycle", "arrivals", "completions", "shed", "queue",
                 "p50", "p95", "p99"});
    const WatchedSeries arrivals = {"counters", "serving.arrivals",
                                    "delta", true};
    const WatchedSeries completions = {"counters",
                                       "serving.completions", "delta",
                                       false};
    const WatchedSeries shed = {"counters", "serving.shed", "delta",
                                true};
    const WatchedSeries queue = {"gauges", "serving.queue_depth",
                                 nullptr, true};
    const WatchedSeries p50 = {"distributions",
                               "serving.latency_cycles", "p50", true};
    const WatchedSeries p95 = {"distributions",
                               "serving.latency_cycles", "p95", true};
    const WatchedSeries p99 = {"distributions",
                               "serving.latency_cycles", "p99", true};
    for (const json::Value &rec : stream.windows) {
        table.addRow({std::to_string(intField(rec, "cycle", 0)),
                      cell(seriesLeaf(rec, arrivals)),
                      cell(seriesLeaf(rec, completions)),
                      cell(seriesLeaf(rec, shed)),
                      cell(seriesLeaf(rec, queue)),
                      cell(seriesLeaf(rec, p50)),
                      cell(seriesLeaf(rec, p95)),
                      cell(seriesLeaf(rec, p99))});
    }
    table.addSeparator();
    const json::Value &trailer = stream.trailer;
    const json::Value *totals = trailer.find("totals");
    const auto total = [totals](const char *name) -> std::string {
        const json::Value *v =
            totals && totals->isObject() ? totals->find(name) : nullptr;
        return v && v->isNumber() ? std::to_string(v->asInt()) : "-";
    };
    const WatchedSeries run_p50 = {"distributions",
                                   "serving.latency_cycles", "p50",
                                   true};
    const WatchedSeries run_p95 = {"distributions",
                                   "serving.latency_cycles", "p95",
                                   true};
    const WatchedSeries run_p99 = {"distributions",
                                   "serving.latency_cycles", "p99",
                                   true};
    table.addRow({"total", total("serving.arrivals"),
                  total("serving.completions"), total("serving.shed"),
                  "-", cell(seriesLeaf(trailer, run_p50)),
                  cell(seriesLeaf(trailer, run_p95)),
                  cell(seriesLeaf(trailer, run_p99))});
    std::ostringstream os;
    table.print(os);
    return os.str();
}

double
WindowDelta::ratio() const
{
    if (baseline == 0.0) {
        return current == 0.0
                   ? 1.0
                   : std::numeric_limits<double>::infinity();
    }
    return current / baseline;
}

bool
WindowDelta::regressed(double threshold) const
{
    if (lower_is_better)
        return current > threshold * baseline;
    return current * threshold < baseline;
}

std::vector<WindowDelta>
DiffResult::regressions(double threshold) const
{
    std::vector<WindowDelta> out;
    for (const WindowDelta &d : deltas) {
        if (d.regressed(threshold))
            out.push_back(d);
    }
    return out;
}

json::Value
DiffResult::toJson(double threshold) const
{
    json::Value v = json::Value::object();
    v["report_version"] = json::Value(int64_t{1});
    v["threshold"] = threshold;
    v["windows_compared"] = [this] {
        int64_t max_windows = 0;
        std::map<int64_t, int64_t> seen;
        for (const WindowDelta &d : deltas)
            seen[d.cycle]++;
        for (const auto &entry : seen) {
            if (entry.first >= 0)
                ++max_windows;
        }
        return max_windows;
    }();
    json::Value regs = json::Value::array();
    for (const WindowDelta &d : regressions(threshold)) {
        json::Value r = json::Value::object();
        r["cycle"] = d.cycle;
        r["path"] = d.path;
        r["baseline"] = d.baseline;
        r["current"] = d.current;
        r["lower_is_better"] = json::Value(d.lower_is_better);
        regs.push(std::move(r));
    }
    v["regressions"] = std::move(regs);
    json::Value errs = json::Value::array();
    for (const std::string &e : errors)
        errs.push(json::Value(e));
    v["errors"] = std::move(errs);
    return v;
}

int
DiffResult::exitCode(double threshold) const
{
    if (!errors.empty())
        return kError;
    return regressions(threshold).empty() ? kPass : kRegression;
}

DiffResult
diffStreams(const MetricsStream &baseline,
            const MetricsStream &current)
{
    DiffResult result;
    if (baseline.interval() != current.interval()) {
        result.errors.push_back(
            "interval mismatch: baseline " +
            std::to_string(baseline.interval()) + ", current " +
            std::to_string(current.interval()));
        return result;
    }

    std::map<int64_t, const json::Value *> current_by_cycle;
    for (const json::Value &rec : current.windows)
        current_by_cycle[intField(rec, "cycle", -1)] = &rec;

    for (const json::Value &base_rec : baseline.windows) {
        const int64_t cycle = intField(base_rec, "cycle", -1);
        const auto it = current_by_cycle.find(cycle);
        if (it == current_by_cycle.end()) {
            result.errors.push_back(
                "window at cycle " + std::to_string(cycle) +
                " missing from current stream");
            continue;
        }
        const json::Value &cur_rec = *it->second;
        current_by_cycle.erase(it);
        for (const WatchedSeries &series : kWatched) {
            const json::Value *base_leaf = seriesLeaf(base_rec, series);
            if (!base_leaf)
                continue; // channel absent from this stream's schema
            const json::Value *cur_leaf = seriesLeaf(cur_rec, series);
            if (!cur_leaf) {
                result.errors.push_back(
                    "series " + seriesPath(series) +
                    " missing from current window at cycle " +
                    std::to_string(cycle));
                continue;
            }
            result.deltas.push_back({cycle, seriesPath(series),
                                     series.lower_is_better,
                                     base_leaf->asNumber(),
                                     cur_leaf->asNumber()});
        }
    }
    for (const auto &leftover : current_by_cycle) {
        result.errors.push_back(
            "window at cycle " + std::to_string(leftover.first) +
            " missing from baseline stream");
    }

    // Whole-run rows from the trailers (cycle -1): the distribution
    // percentiles, exactly the report's gated latencies.
    for (const WatchedSeries &series : kWatched) {
        if (std::string(series.group) != "distributions")
            continue;
        const json::Value *base_leaf =
            seriesLeaf(baseline.trailer, series);
        const json::Value *cur_leaf =
            seriesLeaf(current.trailer, series);
        if (base_leaf && cur_leaf) {
            result.deltas.push_back({-1, seriesPath(series),
                                     series.lower_is_better,
                                     base_leaf->asNumber(),
                                     cur_leaf->asNumber()});
        }
    }
    return result;
}

void
diffSummaries(const json::Value &baseline, const json::Value &current,
              DiffResult *out)
{
    std::vector<std::pair<std::string, double>> base_flat;
    std::vector<std::pair<std::string, double>> cur_flat;
    benchcmp::flattenNumbers(baseline, "", &base_flat);
    benchcmp::flattenNumbers(current, "", &cur_flat);
    std::map<std::string, double> cur_by_path(cur_flat.begin(),
                                              cur_flat.end());
    for (const auto &entry : base_flat) {
        const size_t dot = entry.first.rfind('.');
        const std::string leaf = dot == std::string::npos
                                     ? entry.first
                                     : entry.first.substr(dot + 1);
        if (!benchcmp::isWatchedMetric(leaf))
            continue;
        const auto it = cur_by_path.find(entry.first);
        if (it == cur_by_path.end()) {
            out->errors.push_back("summary metric " + entry.first +
                                  " missing from current");
            continue;
        }
        out->deltas.push_back({-1, "summary." + entry.first, true,
                               entry.second, it->second});
    }
}

int
run(const std::vector<std::string> &metrics_paths,
    const std::vector<std::string> &summary_paths, double threshold,
    const std::string &json_path, std::ostream &os, std::ostream &err)
{
    if (metrics_paths.empty() || metrics_paths.size() > 2) {
        err << "pl_report: expected one metrics stream (report) or "
               "two (diff)\n";
        return kError;
    }
    if (!summary_paths.empty() &&
        summary_paths.size() != metrics_paths.size()) {
        err << "pl_report: summary count must match metrics count\n";
        return kError;
    }
    if (threshold < 1.0) {
        err << "pl_report: threshold must be >= 1.0\n";
        return kError;
    }

    std::vector<MetricsStream> streams;
    std::vector<json::Value> summaries;
    try {
        for (const std::string &path : metrics_paths)
            streams.push_back(loadMetrics(path));
        for (const std::string &path : summary_paths) {
            std::ifstream in(path);
            if (!in) {
                throw ConfigError("cannot open summary file '" + path +
                                  "'");
            }
            std::ostringstream text;
            text << in.rdbuf();
            summaries.push_back(json::parse(text.str()));
        }
    } catch (const ConfigError &e) {
        err << "pl_report: " << e.what() << "\n";
        return kError;
    } catch (const json::ParseError &e) {
        err << "pl_report: " << e.what() << "\n";
        return kError;
    }

    if (streams.size() == 1) {
        os << renderTable(streams[0]);
        return kPass;
    }

    DiffResult diff = diffStreams(streams[0], streams[1]);
    if (summaries.size() == 2)
        diffSummaries(summaries[0], summaries[1], &diff);

    for (const std::string &e : diff.errors)
        err << "pl_report: " << e << "\n";
    const std::vector<WindowDelta> regs = diff.regressions(threshold);
    Table table({"window", "series", "baseline", "current", "ratio"});
    for (const WindowDelta &d : regs) {
        table.addRow({d.cycle < 0 ? std::string("run")
                                  : std::to_string(d.cycle),
                      d.path, Table::num(d.baseline),
                      Table::num(d.current), Table::num(d.ratio())});
    }
    if (!regs.empty()) {
        os << "regressed windows (threshold " << threshold << "x):\n";
        table.print(os);
    } else if (diff.errors.empty()) {
        os << "no regressed windows at threshold " << threshold
           << "x (" << diff.deltas.size() << " series compared)\n";
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            err << "pl_report: cannot write '" << json_path << "'\n";
            return kError;
        }
        diff.toJson(threshold).write(out, 2);
        out << "\n";
    }
    return diff.exitCode(threshold);
}

} // namespace report
} // namespace pipelayer
