/**
 * @file
 * The reporting/diff logic behind tools/pl_report — the consumer of
 * the serving telemetry artifacts (docs/observability.md, "Serving
 * telemetry"): metrics NDJSON streams written by metrics::Sampler
 * (`pl_serve --metrics=`) and the pl_serve summary JSON.  A library,
 * like bench_compare_lib, so tests/test_metrics can drive the
 * parsing, table and diff and assert exit codes without spawning
 * processes.
 *
 * Two modes:
 *
 *  - report: one stream renders as a latency/throughput-over-time
 *    table, one row per window (arrivals, completions, sheds, queue
 *    depth, latency p50/p95/p99), with the trailer totals appended;
 *  - diff: two streams compare window by window.  Watched window
 *    series are directional: latency/queue-wait percentiles, shed
 *    deltas and queue depth regress when the current value exceeds
 *    threshold x baseline (lower is better); the completions delta
 *    (throughput) regresses when it falls below baseline / threshold.
 *    Serve summaries, when given, are flattened with bench_compare's
 *    flattenNumbers and gated on the same watched-metric rule
 *    (isWatchedMetric) as the bench envelopes.
 *
 * Exit codes mirror bench_compare: 0 pass, 1 regression, 2 bad input.
 */

#ifndef PIPELAYER_TOOLS_PL_REPORT_LIB_HH_
#define PIPELAYER_TOOLS_PL_REPORT_LIB_HH_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace pipelayer {
namespace report {

/** Exit codes of the pl_report tool (and of run()). */
enum ExitCode {
    kPass = 0,       //!< no watched series regressed
    kRegression = 1, //!< at least one regressed window or summary metric
    kError = 2,      //!< bad input: unreadable file, malformed stream
};

/** One parsed metrics stream: the window records plus the trailer. */
struct MetricsStream
{
    std::vector<json::Value> windows; //!< in cycle order
    json::Value trailer;              //!< the "trailer":true record

    int64_t interval() const;
};

/**
 * Parse an NDJSON metrics stream (metrics::Sampler::write output).
 * Throws ConfigError on malformed lines, a missing/misplaced trailer
 * or non-monotone window cycles.
 */
MetricsStream parseMetrics(const std::string &text);

/** parseMetrics() over a file; throws ConfigError if unreadable. */
MetricsStream loadMetrics(const std::string &path);

/**
 * The over-time table: one row per window with the serving.* series
 * (missing channels render as "-"), a separator, then the trailer
 * totals row.
 */
std::string renderTable(const MetricsStream &stream);

/** One watched (window, series) baseline/current pair. */
struct WindowDelta
{
    int64_t cycle = 0;     //!< window start (trailer rows: -1)
    std::string path;      //!< flattened path within the record
    bool lower_is_better = true;
    double baseline = 0.0;
    double current = 0.0;

    /** current / baseline (infinity when baseline is zero). */
    double ratio() const;

    /**
     * Directional gate at @p threshold (>= 1): lower-is-better
     * regresses when current > threshold x baseline, higher-is-better
     * when current x threshold < baseline.
     */
    bool regressed(double threshold) const;
};

/** The outcome of diffing two streams (plus optional summaries). */
struct DiffResult
{
    std::vector<WindowDelta> deltas; //!< watched pairs, window order
    std::vector<std::string> errors; //!< structural mismatches

    /** Deltas regressed at @p threshold. */
    std::vector<WindowDelta> regressions(double threshold) const;

    /**
     * Machine-readable diff: {"report_version":1, "threshold":...,
     * "windows_compared":N, "regressions":[...], "errors":[...]}.
     */
    json::Value toJson(double threshold) const;

    /** Worst exit code implied by errors/deltas at @p threshold. */
    int exitCode(double threshold) const;
};

/**
 * Window-by-window diff.  Streams must share the interval; windows
 * are matched by start cycle (a window missing from either side is an
 * error — the horizons diverged).  Trailer distributions join as
 * whole-run rows (cycle -1).
 */
DiffResult diffStreams(const MetricsStream &baseline,
                       const MetricsStream &current);

/**
 * Gate two pl_serve summaries: flatten both, keep watched leaves
 * (bench_compare's rule), compare lower-is-better.  Deltas append to
 * @p out with cycle -1 and the "summary." path prefix.
 */
void diffSummaries(const json::Value &baseline,
                   const json::Value &current, DiffResult *out);

/**
 * The whole tool.  @p metrics_paths holds one path (report mode) or
 * two, baseline first (diff mode); @p summary_paths empty or matching
 * @p metrics_paths in count.  Prints the table/report to @p os,
 * problems to @p err, writes toJson() to @p json_path when non-empty,
 * and returns the process exit code.
 */
int run(const std::vector<std::string> &metrics_paths,
        const std::vector<std::string> &summary_paths,
        double threshold, const std::string &json_path,
        std::ostream &os, std::ostream &err);

} // namespace report
} // namespace pipelayer

#endif // PIPELAYER_TOOLS_PL_REPORT_LIB_HH_
