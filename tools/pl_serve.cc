/**
 * @file
 * pl_serve: the inference-serving request daemon (docs/serving.md).
 *
 * Feeds a request stream through one persistently mapped network
 * (sim::ServingSim): admission with backpressure, batch coalescing
 * toward the (N/B)(2L+B+1) sweet spot, execution on the event-queue
 * scheduler.  Requests come from an ArrivalTrace JSON file
 * (--arrivals=FILE, the deterministic / replayable path CI uses) or
 * as newline-delimited JSON on stdin, one request per line:
 *
 *   {"id": 0, "arrival_cycle": 0}
 *   {"id": 1, "arrival_cycle": 7}
 *
 * Arrival cycles must be non-decreasing (ids are optional labels;
 * requests are indexed in arrival order).  Output is one completion
 * record per request as NDJSON (stdout, or --completions=FILE) and a
 * serving summary — queue depths, batch-size histogram, shed counts,
 * p50/p95/p99 latency in logical cycles, and the embedded execution
 * SimReport — as JSON (--json=FILE) plus a human-readable digest on
 * stderr.  Under PL_PROFILE=1 the summary also embeds the host
 * profile (prof::Report) as a "profile" member.
 *
 * Telemetry (docs/observability.md, "Serving telemetry"):
 * --trace=FILE writes the request-lifecycle Chrome trace (per-request
 * async spans, request->batch flow arrows, queue/in-flight/shed
 * counter tracks, plus the pipeline timeline) and --metrics=FILE the
 * windowed NDJSON time series sampled every --metrics-interval=N
 * logical cycles.  Every artifact is logical-cycle arithmetic, so two
 * runs of the same trace are byte-identical at any PL_THREADS — the
 * property the CI serving smoke gates.
 *
 * Exit status: 0 on success, 1 on bad usage or malformed input.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/prof.hh"
#include "common/trace.hh"
#include "reram/params.hh"
#include "sim/arrival.hh"
#include "sim/serving.hh"
#include "workloads/model_zoo.hh"

namespace {

using namespace pipelayer;

void
usage(std::ostream &os)
{
    os << "usage: pl_serve [--network=NAME] [--arrivals=FILE]\n"
          "                [--queue-capacity=N] [--max-batch=N]\n"
          "                [--max-wait=N] [--completions=FILE]\n"
          "                [--json=FILE] [--trace=FILE]\n"
          "                [--metrics=FILE] [--metrics-interval=N]\n"
          "                [--quiet]\n"
          "\n"
          "Serve a request stream through a mapped network.  Requests\n"
          "come from an ArrivalTrace JSON file (--arrivals) or from\n"
          "stdin as NDJSON lines {\"id\": N, \"arrival_cycle\": N}\n"
          "with non-decreasing arrival cycles.  Completion records\n"
          "stream as NDJSON to stdout (or --completions); the summary\n"
          "JSON goes to --json, and a human digest to stderr\n"
          "(suppressed by --quiet).\n"
          "\n"
          "Telemetry: --trace writes the request-lifecycle Chrome\n"
          "trace (open in Perfetto), --metrics the windowed NDJSON\n"
          "time series sampled every --metrics-interval logical\n"
          "cycles (default 64; see tools/pl_report).\n";
}

/** Parse stdin NDJSON requests into a replay trace. */
sim::ArrivalTrace
traceFromStdin(std::istream &in)
{
    std::vector<int64_t> cycles;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Skip blank lines so `echo >>` style feeds are forgiving.
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        json::Value v;
        try {
            v = json::parse(line);
        } catch (const json::ParseError &err) {
            throw ConfigError("stdin line " + std::to_string(lineno) +
                              ": " + err.what());
        }
        const json::Value *cycle =
            v.isObject() ? v.find("arrival_cycle") : nullptr;
        if (!cycle || !cycle->isNumber()) {
            throw ConfigError(
                "stdin line " + std::to_string(lineno) +
                ": expected {\"arrival_cycle\": <cycle>, ...}");
        }
        cycles.push_back(cycle->asInt());
    }
    return sim::ArrivalTrace::replay(std::move(cycles));
}

/** Load an ArrivalTrace description from a JSON file. */
sim::ArrivalTrace
traceFromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError("cannot open trace file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return sim::ArrivalTrace::fromJson(json::parse(text.str()));
    } catch (const json::ParseError &err) {
        throw ConfigError("trace file '" + path + "': " + err.what());
    }
}

int
serveMain(int argc, char **argv)
{
    ArgParser args(argc, argv);
    if (args.flag("help")) {
        usage(std::cout);
        return 0;
    }
    args.rejectUnknown({"network", "arrivals", "queue-capacity",
                        "max-batch", "max-wait", "completions", "json",
                        "trace", "metrics", "metrics-interval", "quiet",
                        "help"});

    const std::string network = args.str("network", "Mnist-A");
    sim::ServingConfig config;
    config.queue_capacity =
        args.integer("queue-capacity", config.queue_capacity);
    config.max_batch = args.integer("max-batch", config.max_batch);
    config.max_wait_cycles =
        args.integer("max-wait", config.max_wait_cycles);

    const std::string arrivals_path = args.str("arrivals");
    const sim::ArrivalTrace trace = arrivals_path.empty()
                                        ? traceFromStdin(std::cin)
                                        : traceFromFile(arrivals_path);

    const std::string trace_path = args.str("trace");
    const std::string metrics_path = args.str("metrics");
    trace::TraceRecorder recorder("pl_serve " + network);
    metrics::Sampler sampler(args.integer("metrics-interval", 64));

    const workloads::NetworkSpec spec =
        workloads::networkByName(network);
    const reram::DeviceParams params;
    const sim::ServingSim serving(spec, params);
    const sim::ServingReport report = serving.run(
        trace, config, trace_path.empty() ? nullptr : &recorder,
        metrics_path.empty() ? nullptr : &sampler);

    if (!trace_path.empty())
        recorder.writeFile(trace_path);
    if (!metrics_path.empty())
        sampler.writeFile(metrics_path);

    // Completion records: NDJSON, one line per request in arrival
    // order, shed requests included (admitted: false).
    const std::string completions_path = args.str("completions");
    std::ofstream completions_file;
    if (!completions_path.empty()) {
        completions_file.open(completions_path);
        if (!completions_file) {
            throw ConfigError("cannot write completions file '" +
                              completions_path + "'");
        }
    }
    std::ostream &records =
        completions_path.empty() ? std::cout : completions_file;
    for (const sim::CompletionRecord &rec : report.completions)
        records << rec.toJson().dump() << "\n";

    const std::string json_path = args.str("json");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            throw ConfigError("cannot write summary file '" +
                              json_path + "'");
        }
        json::Value summary = report.toJson();
        // Host-profile sidecar: wall-clock numbers, so only under
        // PL_PROFILE=1 and never in the gated logical-cycle fields.
        if (prof::enabled())
            summary["profile"] = prof::snapshot().toJson();
        summary.write(out, 2);
        out << "\n";
    }
    if (!args.flag("quiet"))
        report.print(std::cerr);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return serveMain(argc, argv);
    } catch (const pipelayer::ConfigError &err) {
        std::cerr << "pl_serve: " << err.what() << "\n";
        return 1;
    }
}
