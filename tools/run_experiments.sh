#!/usr/bin/env bash
# Build everything, run the test suite, and regenerate every table and
# figure of the paper's evaluation (outputs land in the current dir).
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    name=$(basename "$b")
    echo "==================================================================="
    echo "== $b"
    echo "==================================================================="
    # Profile every Runner-based bench so the PROFILE_<name>.json
    # reports land next to the envelopes (the profiler is off by
    # default; --profile turns it on for this process only).  The
    # bench_micro_* binaries are google-benchmark harnesses and don't
    # take the shared Runner flags.
    case "$name" in
        bench_micro_*) "$b" ;;
        *) "$b" --profile="PROFILE_${name#bench_}.json" ;;
    esac
done 2>&1 | tee bench_output.txt

# Serving scenario (docs/serving.md): serve the committed canned
# arrival trace through the pl_serve daemon, keeping the per-request
# completion records, the summary and the telemetry artifacts — the
# request-lifecycle Chrome trace and the windowed metrics stream
# (docs/observability.md, "Serving telemetry") — next to the bench
# envelopes.  bench_serving (the rate sweep) already ran with the
# loop above.
echo "==================================================================="
echo "== pl_serve (canned trace)"
echo "==================================================================="
./build/tools/pl_serve \
    --network=Mnist-A \
    --arrivals=bench/traces/serving_arrivals.json \
    --completions=SERVE_completions.ndjson \
    --trace=TRACE_serving.json \
    --metrics=METRICS_serving.ndjson \
    --metrics-interval=64 \
    --json=SERVE_summary.json
./build/tools/json_lint bench/traces/serving_arrivals.json \
    SERVE_completions.ndjson SERVE_summary.json \
    TRACE_serving.json METRICS_serving.ndjson

# Telemetry report: render the over-time table, then smoke the diff
# path — a stream must diff clean against itself (exit 0).
./build/tools/pl_report --metrics=METRICS_serving.ndjson
./build/tools/pl_report \
    --baseline=METRICS_serving.ndjson \
    --current=METRICS_serving.ndjson \
    --json=REPORT_serving_diff.json

# Every table/figure bench also wrote a BENCH_<name>.json envelope
# (and bench_fig6_timeline a Chrome trace) plus a PROFILE_<name>.json
# profiler report; validate them all, along with the committed
# perf baselines.
./build/tools/json_lint BENCH_*.json PROFILE_*.json bench/baselines/BENCH_*.json

# Gate on the committed baselines: deterministic model metrics may
# not regress past 2x (see tools/bench_compare --help).
./build/tools/bench_compare bench/baselines . --threshold=2.0
