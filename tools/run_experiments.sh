#!/usr/bin/env bash
# Build everything, run the test suite, and regenerate every table and
# figure of the paper's evaluation (outputs land in the current dir).
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "==================================================================="
    echo "== $b"
    echo "==================================================================="
    "$b"
done 2>&1 | tee bench_output.txt

# Every table/figure bench also wrote a BENCH_<name>.json envelope
# (and bench_fig6_timeline a Chrome trace); validate them all.
./build/tools/json_lint BENCH_*.json
